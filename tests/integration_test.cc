// End-to-end tests across modules: iTracker price dynamics driving peer
// selection inside the swarm simulator — miniature versions of the paper's
// experiments, asserting the qualitative results (who wins) rather than
// absolute numbers.
#include <gtest/gtest.h>

#include "core/apptracker.h"
#include "core/embedding.h"
#include "core/itracker.h"
#include "core/management.h"
#include "core/matching.h"
#include "core/policy_adaptive.h"
#include "core/selectors.h"
#include "core/trackerless.h"
#include "net/synth.h"
#include "net/topology.h"
#include "proto/caching_client.h"
#include "proto/service.h"
#include "sim/bittorrent.h"

namespace p4p {
namespace {

std::vector<sim::PeerSpec> ClusteredSwarm(int n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  sim::PopulationConfig cfg;
  cfg.num_peers = n;
  // Heavy northeastern concentration as in the paper's motivation.
  cfg.pops = {net::kNewYork, net::kWashingtonDC, net::kChicago, net::kAtlanta,
              net::kSeattle, net::kSunnyvale};
  cfg.pop_weights = {6.0, 5.0, 3.0, 2.0, 1.0, 1.0};
  cfg.join_window = 60.0;
  auto peers = MakePopulation(cfg, rng);
  sim::PeerSpec seed_peer;
  seed_peer.node = net::kChicago;
  seed_peer.up_bps = 10e6;
  seed_peer.down_bps = 10e6;
  seed_peer.seed = true;
  peers.push_back(seed_peer);
  return peers;
}

sim::BitTorrentConfig SmallConfig() {
  sim::BitTorrentConfig cfg;
  cfg.file_bytes = 4.0 * 1024 * 1024;
  cfg.block_bytes = 256.0 * 1024;
  cfg.horizon = 6000.0;
  cfg.rng_seed = 5;
  return cfg;
}

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : graph_(net::MakeAbilene()), routing_(graph_) {}
  net::Graph graph_;
  net::RoutingTable routing_;
};

TEST_F(IntegrationTest, P4PReducesBottleneckTrafficVsNative) {
  const auto peers = ClusteredSwarm(60, 42);
  sim::BitTorrentSimulator sim(graph_, routing_, SmallConfig());

  core::NativeRandomSelector native;
  const auto native_result = sim.Run(peers, native);

  core::ITracker tracker(graph_, routing_);
  // Let prices adapt to the native traffic pattern first (warm start), as
  // the paper's iTracker would have converged on pre-arrival conditions.
  std::vector<double> native_rates(graph_.link_count(), 0.0);
  for (std::size_t l = 0; l < graph_.link_count(); ++l) {
    native_rates[l] = native_result.link_bytes[l] / 1000.0 * 8.0;
  }
  for (int i = 0; i < 50; ++i) tracker.Update(native_rates);

  core::P4PSelector p4p;
  p4p.RegisterITracker(1, &tracker);
  const auto p4p_result = sim.Run(peers, p4p);

  const double native_bottleneck =
      native_result.link_bytes[static_cast<std::size_t>(native_result.busiest_link())];
  const double p4p_bottleneck =
      p4p_result.link_bytes[static_cast<std::size_t>(p4p_result.busiest_link())];
  EXPECT_LT(p4p_bottleneck, native_bottleneck);
  // Application performance must not collapse (within 50% of native).
  ASSERT_FALSE(p4p_result.completion_times.empty());
  EXPECT_LT(sim::Mean(p4p_result.completion_times),
            1.5 * sim::Mean(native_result.completion_times));
  EXPECT_DOUBLE_EQ(p4p_result.completed_fraction, 1.0);
}

TEST_F(IntegrationTest, P4PReducesUnitBdp) {
  const auto peers = ClusteredSwarm(50, 43);
  sim::BitTorrentSimulator sim(graph_, routing_, SmallConfig());
  core::NativeRandomSelector native;
  core::ITracker tracker(graph_, routing_);
  core::P4PSelector p4p;
  p4p.RegisterITracker(1, &tracker);
  const auto native_result = sim.Run(peers, native);
  const auto p4p_result = sim.Run(peers, p4p);
  EXPECT_LT(p4p_result.unit_bdp(), native_result.unit_bdp());
}

TEST_F(IntegrationTest, DynamicPriceLoopSteersLiveSwarm) {
  // Protected-link mode as in the Fig. 6 experiment: the iTracker guards
  // DC -> NY and the appTracker refreshes neighbor sets periodically.
  const auto peers = ClusteredSwarm(50, 44);
  auto cfg = SmallConfig();
  cfg.selector_refresh_interval = 30.0;
  // Short epochs: the swarm drains fast, and the price loop must get
  // several updates before it does.
  cfg.epoch_interval = 5.0;
  sim::BitTorrentSimulator sim(graph_, routing_, cfg);

  core::ITrackerConfig tcfg;
  tcfg.mode = core::PriceMode::kProtectedLink;
  core::ITracker tracker(graph_, routing_, tcfg);
  const auto protected_link = graph_.find_link(net::kWashingtonDC, net::kNewYork);
  // The threshold is tiny relative to the 10 Gbps links so that even this
  // small swarm's traffic trips the protection rule.
  tracker.ProtectLink(protected_link, core::ProtectedLinkRule{0.0005, 50.0, 0.05});
  sim.set_on_epoch([&tracker](double, std::span<const double> rates) {
    tracker.Update(rates);
  });

  core::P4PSelector p4p;
  p4p.RegisterITracker(1, &tracker);
  const auto guarded = sim.Run(peers, p4p);

  core::NativeRandomSelector native;
  const auto baseline = sim.Run(peers, native);

  const auto e = static_cast<std::size_t>(protected_link);
  EXPECT_LT(guarded.link_bytes[e], baseline.link_bytes[e]);
  EXPECT_GT(tracker.link_price(protected_link), 0.0);
}

TEST_F(IntegrationTest, MatchingWeightsFlowIntoSelection) {
  // The Pando pipeline: aggregate per-PID capacities -> SolveMatching ->
  // weights -> P4PSelector -> swarm.
  core::ITracker tracker(graph_, routing_);
  const int n = tracker.num_pids();
  core::MatchingInput input;
  input.upload_bps.assign(static_cast<std::size_t>(n), 10e6);
  input.download_bps.assign(static_cast<std::size_t>(n), 10e6);
  const auto view = tracker.external_view();
  input.distances = &view;
  input.beta = 0.9;
  auto matched = core::SolveMatching(input);
  ASSERT_EQ(matched.status, lp::SolveStatus::kOptimal);
  core::ApplyConcaveTransform(matched.weights, 0.5);

  core::P4PSelector p4p;
  p4p.RegisterITracker(1, &tracker);
  p4p.SetMatchingWeights(1, matched.weights);

  const auto peers = ClusteredSwarm(40, 45);
  sim::BitTorrentSimulator sim(graph_, routing_, SmallConfig());
  const auto result = sim.Run(peers, p4p);
  EXPECT_DOUBLE_EQ(result.completed_fraction, 1.0);
}

TEST_F(IntegrationTest, PortalServedDistancesMatchDirectAccess) {
  // appTracker fetches the external view through the wire protocol and gets
  // exactly what the iTracker computes locally.
  core::ITracker tracker(graph_, routing_);
  std::vector<double> traffic(graph_.link_count(), 0.0);
  traffic[3] = 8e9;
  for (int i = 0; i < 10; ++i) tracker.Update(traffic);

  proto::ITrackerService service(&tracker);
  proto::TcpServer server(0, service.handler());
  proto::PortalClient client(std::make_unique<proto::TcpClient>(server.port()));
  const auto remote_view = client.GetExternalView();
  for (core::Pid i = 0; i < tracker.num_pids(); ++i) {
    for (core::Pid j = 0; j < tracker.num_pids(); ++j) {
      EXPECT_DOUBLE_EQ(remote_view.at(i, j), tracker.pdistance(i, j));
    }
  }
}

TEST_F(IntegrationTest, InterdomainDualSuppressesCrossLinkTraffic) {
  // Two virtual ASes (east/west of Abilene); the interdomain dual on the
  // Chicago-KansasCity link should reduce P4P traffic crossing it relative
  // to native.
  const auto inter_ab = graph_.find_link(net::kChicago, net::kKansasCity);
  const auto inter_ba = graph_.find_link(net::kKansasCity, net::kChicago);

  auto peers = ClusteredSwarm(50, 46);
  // Assign AS by side: east nodes AS 1, west AS 2.
  for (auto& p : peers) {
    const bool east = p.node == net::kNewYork || p.node == net::kWashingtonDC ||
                      p.node == net::kChicago || p.node == net::kAtlanta ||
                      p.node == net::kIndianapolis;
    p.as_number = east ? 1 : 2;
  }

  core::ITracker tracker(graph_, routing_);
  tracker.DeclareInterdomainLink(inter_ab, 1e6);  // tight virtual capacity
  tracker.DeclareInterdomainLink(inter_ba, 1e6);

  auto cfg = SmallConfig();
  cfg.epoch_interval = 30.0;
  cfg.selector_refresh_interval = 60.0;
  sim::BitTorrentSimulator sim(graph_, routing_, cfg);
  sim.set_on_epoch([&tracker](double, std::span<const double> rates) {
    tracker.Update(rates);
  });

  core::P4PSelector p4p;
  p4p.RegisterITracker(1, &tracker);
  p4p.RegisterITracker(2, &tracker);
  const auto p4p_result = sim.Run(peers, p4p);
  core::NativeRandomSelector native;
  const auto native_result = sim.Run(peers, native);

  const double p4p_cross =
      p4p_result.link_bytes[static_cast<std::size_t>(inter_ab)] +
      p4p_result.link_bytes[static_cast<std::size_t>(inter_ba)];
  const double native_cross =
      native_result.link_bytes[static_cast<std::size_t>(inter_ab)] +
      native_result.link_bytes[static_cast<std::size_t>(inter_ba)];
  EXPECT_LT(p4p_cross, native_cross);
}

TEST_F(IntegrationTest, WorksOnSynthromaticIspTopologies) {
  // The whole pipeline runs on each Table 1 topology.
  for (const auto& make : {net::MakeIspA, net::MakeIspC}) {
    const net::Graph g = make();
    const net::RoutingTable routing(g);
    core::ITracker tracker(g, routing);
    core::P4PSelector p4p;
    p4p.RegisterITracker(1, &tracker);

    std::mt19937_64 rng(9);
    sim::PopulationConfig pcfg;
    pcfg.num_peers = 30;
    for (net::NodeId n = 0; n < static_cast<net::NodeId>(g.node_count()); ++n) {
      pcfg.pops.push_back(n);
    }
    auto peers = MakePopulation(pcfg, rng);
    sim::PeerSpec seed_peer;
    seed_peer.node = 0;
    seed_peer.up_bps = 10e6;
    seed_peer.down_bps = 10e6;
    seed_peer.seed = true;
    peers.push_back(seed_peer);

    sim::BitTorrentSimulator sim(g, routing, SmallConfig());
    const auto result = sim.Run(peers, p4p);
    EXPECT_DOUBLE_EQ(result.completed_fraction, 1.0) << g.name();
  }
}

TEST_F(IntegrationTest, TrackerlessSwarmMatchesTrackerBasedQuality) {
  // Peers run on locally cached p-distance rows (gossip-distributable)
  // instead of an appTracker, and still beat native on unit BDP.
  core::ITracker tracker(graph_, routing_);
  core::DistanceCache cache(1e9);
  for (core::Pid i = 0; i < tracker.num_pids(); ++i) {
    core::CachedRow row;
    row.origin = i;
    row.version = tracker.version();
    row.learned_at = 0.0;
    row.distances = tracker.GetPDistances(i);
    cache.Learn(std::move(row));
  }
  core::TrackerlessSelector trackerless(cache, [] { return 0.0; });
  core::NativeRandomSelector native;

  const auto peers = ClusteredSwarm(50, 47);
  sim::BitTorrentSimulator sim(graph_, routing_, SmallConfig());
  const auto t_result = sim.Run(peers, trackerless);
  const auto n_result = sim.Run(peers, native);
  EXPECT_DOUBLE_EQ(t_result.completed_fraction, 1.0);
  EXPECT_LT(t_result.unit_bdp(), n_result.unit_bdp());
}

TEST_F(IntegrationTest, CachedPortalFeedsTrackerlessCache) {
  // PortalClient -> CachingPortalClient -> DistanceCache: the full peer-side
  // information path over the wire protocol.
  core::ITracker tracker(graph_, routing_);
  proto::ITrackerService service(&tracker);
  double now = 0.0;
  proto::CachingPortalClient portal(
      std::make_unique<proto::InProcessTransport>(service.handler()),
      [&now] { return now; }, 60.0);

  core::DistanceCache cache(300.0);
  for (core::Pid i = 0; i < tracker.num_pids(); ++i) {
    core::CachedRow row;
    row.origin = i;
    row.version = 1;
    row.learned_at = now;
    row.distances = portal.GetPDistances(i);
    cache.Learn(std::move(row));
  }
  EXPECT_EQ(portal.fetch_count(), 1u);  // one wire fetch for all rows
  const auto row = cache.Get(net::kNewYork, 10.0);
  ASSERT_TRUE(row.has_value());
  EXPECT_DOUBLE_EQ(row->distances[net::kSeattle],
                   tracker.pdistance(net::kNewYork, net::kSeattle));
}

TEST_F(IntegrationTest, PolicyBackoffShrinksSwarmDegreeUnderLoad) {
  // The provider publishes thresholds; the application, seeing heavy
  // utilization, requests fewer peers — observable as lower total traffic
  // crossing the network per unit time (fewer concurrent streams).
  core::PolicyRegistry policy;
  policy.SetThresholds({0.5, 0.8});
  double utilization = 0.95;  // permanently heavy
  auto inner = std::make_unique<core::NativeRandomSelector>();
  core::PolicyAdaptiveSelector adaptive(std::move(inner), policy,
                                        [&utilization] { return utilization; });
  core::NativeRandomSelector plain;

  const auto peers = ClusteredSwarm(40, 48);
  sim::BitTorrentSimulator sim(graph_, routing_, SmallConfig());
  const auto backed_off = sim.Run(peers, adaptive);
  const auto full = sim.Run(peers, plain);
  // Both complete; the backed-off swarm still finishes (robustness), and
  // its neighbor degree cap shows up as no-worse bottleneck traffic.
  EXPECT_DOUBLE_EQ(backed_off.completed_fraction, 1.0);
  EXPECT_DOUBLE_EQ(full.completed_fraction, 1.0);
  const double bo_bn =
      backed_off.link_bytes[static_cast<std::size_t>(backed_off.busiest_link())];
  const double full_bn =
      full.link_bytes[static_cast<std::size_t>(full.busiest_link())];
  EXPECT_LE(bo_bn, 1.2 * full_bn);
}

TEST_F(IntegrationTest, ManagementMonitorWatchesLiveControlLoop) {
  // Wire the monitor into the epoch callback of a live swarm and verify it
  // records the control loop's behavior.
  core::ITracker tracker(graph_, routing_);
  core::ManagementMonitor monitor;
  auto cfg = SmallConfig();
  cfg.epoch_interval = 10.0;
  sim::BitTorrentSimulator sim(graph_, routing_, cfg);
  sim.set_on_epoch([&](double now, std::span<const double> rates) {
    tracker.Update(rates);
    monitor.Observe(tracker, rates, now);
  });
  core::P4PSelector p4p;
  p4p.RegisterITracker(1, &tracker);
  const auto peers = ClusteredSwarm(40, 49);
  sim.Run(peers, p4p);
  EXPECT_GT(monitor.observation_count(), 1u);
  EXPECT_GT(monitor.MeanMlu(), 0.0);
  EXPECT_LE(monitor.MeanMlu(), 1.1);
}

TEST_F(IntegrationTest, EmbeddedViewPreservesSteering) {
  // The §10 scalability path: embed the view, rebuild a distance cache from
  // coordinates, and steer a swarm trackerlessly from the embedding.
  core::ITrackerConfig tcfg;
  tcfg.mode = core::PriceMode::kStatic;
  core::ITracker tracker(graph_, routing_, tcfg);
  tracker.SetPricesFromOspf();
  const auto view = tracker.external_view();
  core::EmbeddingConfig ecfg;
  ecfg.dimensions = 6;
  ecfg.iterations = 4000;
  const auto emb = core::CoordinateEmbedding::Fit(view, ecfg);

  core::DistanceCache cache(1e9);
  for (core::Pid i = 0; i < tracker.num_pids(); ++i) {
    core::CachedRow row;
    row.origin = i;
    row.version = 1;
    row.learned_at = 0.0;
    for (core::Pid j = 0; j < tracker.num_pids(); ++j) {
      row.distances.push_back(emb.Distance(i, j));
    }
    cache.Learn(std::move(row));
  }
  core::TrackerlessSelector embedded(cache, [] { return 0.0; });
  core::NativeRandomSelector native;
  const auto peers = ClusteredSwarm(50, 50);
  sim::BitTorrentSimulator sim(graph_, routing_, SmallConfig());
  const auto e_result = sim.Run(peers, embedded);
  const auto n_result = sim.Run(peers, native);
  EXPECT_LT(e_result.unit_bdp(), n_result.unit_bdp());
}

}  // namespace
}  // namespace p4p

#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <random>

namespace p4p::lp {
namespace {

Solution Solve(const Model& m) {
  SimplexSolver solver;
  return solver.Solve(m);
}

TEST(Simplex, TrivialMaximize) {
  // max x s.t. x <= 4.
  Model m;
  const VarId x = m.add_variable("x");
  m.add_constraint({{x, 1.0}}, Sense::kLessEqual, 4.0);
  m.set_direction(Direction::kMaximize);
  m.set_objective_coeff(x, 1.0);
  const auto sol = Solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 4.0, 1e-9);
  EXPECT_NEAR(sol.values[0], 4.0, 1e-9);
}

TEST(Simplex, ClassicTwoVariable) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18. Optimum 36 at (2, 6).
  Model m;
  const VarId x = m.add_variable("x");
  const VarId y = m.add_variable("y");
  m.add_constraint({{x, 1.0}}, Sense::kLessEqual, 4.0);
  m.add_constraint({{y, 2.0}}, Sense::kLessEqual, 12.0);
  m.add_constraint({{x, 3.0}, {y, 2.0}}, Sense::kLessEqual, 18.0);
  m.set_direction(Direction::kMaximize);
  m.set_objective_coeff(x, 3.0);
  m.set_objective_coeff(y, 5.0);
  const auto sol = Solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 36.0, 1e-8);
  EXPECT_NEAR(sol.values[x], 2.0, 1e-8);
  EXPECT_NEAR(sol.values[y], 6.0, 1e-8);
}

TEST(Simplex, MinimizeWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2. Optimum: y = 8, x = 2 -> 28?
  // 2x+3y with x+y>=10: cheapest is all-x: x = 10, y = 0 -> 20.
  Model m;
  const VarId x = m.add_variable("x");
  const VarId y = m.add_variable("y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kGreaterEqual, 10.0);
  m.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 2.0);
  m.set_objective_coeff(x, 2.0);
  m.set_objective_coeff(y, 3.0);
  const auto sol = Solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 20.0, 1e-8);
  EXPECT_NEAR(sol.values[x], 10.0, 1e-8);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y s.t. x + 2y = 4, x,y >= 0 -> y = 2, x = 0, objective 2.
  Model m;
  const VarId x = m.add_variable("x");
  const VarId y = m.add_variable("y");
  m.add_constraint({{x, 1.0}, {y, 2.0}}, Sense::kEqual, 4.0);
  m.set_objective_coeff(x, 1.0);
  m.set_objective_coeff(y, 1.0);
  const auto sol = Solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-8);
  EXPECT_NEAR(sol.values[y], 2.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const VarId x = m.add_variable("x");
  m.add_constraint({{x, 1.0}}, Sense::kLessEqual, 1.0);
  m.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 2.0);
  m.set_objective_coeff(x, 1.0);
  EXPECT_EQ(Solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const VarId x = m.add_variable("x");
  m.set_direction(Direction::kMaximize);
  m.set_objective_coeff(x, 1.0);
  m.add_constraint({{x, -1.0}}, Sense::kLessEqual, 0.0);  // x >= 0, no cap
  EXPECT_EQ(Solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, HonorsUpperBounds) {
  Model m;
  const VarId x = m.add_variable("x", 0.0, 3.0);
  m.set_direction(Direction::kMaximize);
  m.set_objective_coeff(x, 1.0);
  const auto sol = Solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[x], 3.0, 1e-9);
}

TEST(Simplex, HonorsLowerBounds) {
  // min x with x in [5, 10].
  Model m;
  const VarId x = m.add_variable("x", 5.0, 10.0);
  m.set_objective_coeff(x, 1.0);
  const auto sol = Solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[x], 5.0, 1e-9);
  EXPECT_NEAR(sol.objective, 5.0, 1e-9);
}

TEST(Simplex, FreeVariable) {
  // min x s.t. x >= -7 via constraint (variable itself free).
  Model m;
  const VarId x = m.add_variable("x", -kInfinity, kInfinity);
  m.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, -7.0);
  m.set_objective_coeff(x, 1.0);
  const auto sol = Solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[x], -7.0, 1e-8);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x - y <= -2 with max x + y, x,y <= 5 each.
  Model m;
  const VarId x = m.add_variable("x", 0.0, 5.0);
  const VarId y = m.add_variable("y", 0.0, 5.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, Sense::kLessEqual, -2.0);
  m.set_direction(Direction::kMaximize);
  m.set_objective_coeff(x, 1.0);
  m.set_objective_coeff(y, 1.0);
  const auto sol = Solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 8.0, 1e-8);  // x=3, y=5
  EXPECT_LE(sol.values[x] - sol.values[y], -2.0 + 1e-8);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degenerate LP; Bland fallback must terminate.
  Model m;
  const VarId x1 = m.add_variable();
  const VarId x2 = m.add_variable();
  const VarId x3 = m.add_variable();
  m.set_direction(Direction::kMaximize);
  m.set_objective_coeff(x1, 10.0);
  m.set_objective_coeff(x2, -57.0);
  m.set_objective_coeff(x3, -9.0);
  m.add_constraint({{x1, 0.5}, {x2, -5.5}, {x3, -2.5}}, Sense::kLessEqual, 0.0);
  m.add_constraint({{x1, 0.5}, {x2, -1.5}, {x3, -0.5}}, Sense::kLessEqual, 0.0);
  m.add_constraint({{x1, 1.0}}, Sense::kLessEqual, 1.0);
  const auto sol = Solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 1.0, 1e-6);
}

TEST(Simplex, RedundantEqualityRows) {
  // Duplicate equality rows leave artificials basic at zero; solver must
  // still find the optimum.
  Model m;
  const VarId x = m.add_variable();
  const VarId y = m.add_variable();
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kEqual, 5.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kEqual, 5.0);
  m.set_direction(Direction::kMaximize);
  m.set_objective_coeff(x, 2.0);
  m.set_objective_coeff(y, 1.0);
  const auto sol = Solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 10.0, 1e-8);
  EXPECT_NEAR(sol.values[x], 5.0, 1e-8);
}

TEST(Simplex, DuplicateTermsAreSummed) {
  // x + x <= 6 means x <= 3.
  Model m;
  const VarId x = m.add_variable();
  m.add_constraint({{x, 1.0}, {x, 1.0}}, Sense::kLessEqual, 6.0);
  m.set_direction(Direction::kMaximize);
  m.set_objective_coeff(x, 1.0);
  const auto sol = Solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[x], 3.0, 1e-9);
}

TEST(Model, RejectsBadInput) {
  Model m;
  EXPECT_THROW(m.add_variable("x", 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(m.add_variable("x", std::nan(""), 1.0), std::invalid_argument);
  const VarId x = m.add_variable("x");
  EXPECT_THROW(m.add_constraint({{99, 1.0}}, Sense::kLessEqual, 1.0),
               std::invalid_argument);
  EXPECT_THROW(m.add_constraint({{x, std::nan("")}}, Sense::kLessEqual, 1.0),
               std::invalid_argument);
  EXPECT_THROW(m.set_objective_coeff(42, 1.0), std::invalid_argument);
}

TEST(Simplex, ToStringCoversAllStatuses) {
  EXPECT_STREQ(ToString(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(ToString(SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(ToString(SolveStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(ToString(SolveStatus::kIterationLimit), "iteration-limit");
}

// Property sweep: transportation problems with known optimal value.
// Ship from suppliers (capacity s_i) to consumers (demand d_j), cost 1 for
// all pairs; max flow = min(sum s, sum d); min cost for full match = flow.
class TransportLpTest : public ::testing::TestWithParam<int> {};

TEST_P(TransportLpTest, MaxMatchEqualsMinOfTotals) {
  const int n = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(n) * 1234567);
  std::uniform_real_distribution<double> cap(1.0, 10.0);
  std::vector<double> supply(static_cast<std::size_t>(n));
  std::vector<double> demand(static_cast<std::size_t>(n));
  double total_s = 0;
  double total_d = 0;
  for (auto& s : supply) {
    s = cap(rng);
    total_s += s;
  }
  for (auto& d : demand) {
    d = cap(rng);
    total_d += d;
  }

  Model m;
  std::vector<std::vector<VarId>> x(static_cast<std::size_t>(n),
                                    std::vector<VarId>(static_cast<std::size_t>(n)));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = m.add_variable();
    }
  }
  for (int i = 0; i < n; ++i) {
    std::vector<Term> row;
    for (int j = 0; j < n; ++j) {
      row.push_back({x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0});
    }
    m.add_constraint(std::move(row), Sense::kLessEqual, supply[static_cast<std::size_t>(i)]);
  }
  for (int j = 0; j < n; ++j) {
    std::vector<Term> col;
    for (int i = 0; i < n; ++i) {
      col.push_back({x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0});
    }
    m.add_constraint(std::move(col), Sense::kLessEqual, demand[static_cast<std::size_t>(j)]);
  }
  m.set_direction(Direction::kMaximize);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      m.set_objective_coeff(x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                            1.0);
    }
  }
  const auto sol = Solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, std::min(total_s, total_d), 1e-6);
  // Solution must respect all capacities.
  for (int i = 0; i < n; ++i) {
    double row = 0;
    for (int j = 0; j < n; ++j) {
      const double v =
          sol.values[static_cast<std::size_t>(x[static_cast<std::size_t>(i)]
                                                  [static_cast<std::size_t>(j)])];
      EXPECT_GE(v, -1e-9);
      row += v;
    }
    EXPECT_LE(row, supply[static_cast<std::size_t>(i)] + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransportLpTest, ::testing::Values(2, 3, 5, 8, 12));

}  // namespace
}  // namespace p4p::lp

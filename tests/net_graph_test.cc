#include "net/graph.h"

#include <gtest/gtest.h>

namespace p4p::net {
namespace {

TEST(Graph, StartsEmpty) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.link_count(), 0u);
}

TEST(Graph, AddNodeAssignsDenseIds) {
  Graph g;
  EXPECT_EQ(g.add_node("a"), 0);
  EXPECT_EQ(g.add_node("b"), 1);
  EXPECT_EQ(g.add_node("c"), 2);
  EXPECT_EQ(g.node_count(), 3u);
}

TEST(Graph, NodeAttributesRoundTrip) {
  Graph g;
  const NodeId id = g.add_node("pop1", NodeType::kCore, 7, 40.5, -74.2);
  EXPECT_EQ(g.node(id).name, "pop1");
  EXPECT_EQ(g.node(id).type, NodeType::kCore);
  EXPECT_EQ(g.node(id).metro, 7);
  EXPECT_DOUBLE_EQ(g.node(id).latitude, 40.5);
  EXPECT_DOUBLE_EQ(g.node(id).longitude, -74.2);
}

TEST(Graph, AddLinkRoundTrip) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const LinkId e = g.add_link(a, b, 10e9, 5.0, 123.0, LinkType::kInterdomain);
  EXPECT_EQ(g.link(e).src, a);
  EXPECT_EQ(g.link(e).dst, b);
  EXPECT_DOUBLE_EQ(g.link(e).capacity_bps, 10e9);
  EXPECT_DOUBLE_EQ(g.link(e).ospf_weight, 5.0);
  EXPECT_DOUBLE_EQ(g.link(e).distance, 123.0);
  EXPECT_EQ(g.link(e).type, LinkType::kInterdomain);
}

TEST(Graph, DuplexLinkCreatesBothDirections) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const LinkId e = g.add_duplex_link(a, b, 1e9);
  EXPECT_EQ(g.link_count(), 2u);
  EXPECT_EQ(g.link(e).src, a);
  EXPECT_EQ(g.link(e + 1).src, b);
  EXPECT_EQ(g.link(e + 1).dst, a);
  EXPECT_DOUBLE_EQ(g.link(e + 1).capacity_bps, 1e9);
}

TEST(Graph, RejectsSelfLoop) {
  Graph g;
  const NodeId a = g.add_node("a");
  EXPECT_THROW(g.add_link(a, a, 1e9), std::invalid_argument);
}

TEST(Graph, RejectsUnknownNodes) {
  Graph g;
  const NodeId a = g.add_node("a");
  EXPECT_THROW(g.add_link(a, 99, 1e9), std::invalid_argument);
  EXPECT_THROW(g.add_link(-1, a, 1e9), std::invalid_argument);
}

TEST(Graph, RejectsNonPositiveCapacity) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  EXPECT_THROW(g.add_link(a, b, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_link(a, b, -5.0), std::invalid_argument);
}

TEST(Graph, RejectsBadWeightAndDistance) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  EXPECT_THROW(g.add_link(a, b, 1e9, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_link(a, b, 1e9, 1.0, -1.0), std::invalid_argument);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(g.add_link(a, b, inf), std::invalid_argument);
}

TEST(Graph, OutLinksTracksInsertionOrder) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId c = g.add_node("c");
  const LinkId e1 = g.add_link(a, b, 1e9);
  const LinkId e2 = g.add_link(a, c, 1e9);
  ASSERT_EQ(g.out_links(a).size(), 2u);
  EXPECT_EQ(g.out_links(a)[0], e1);
  EXPECT_EQ(g.out_links(a)[1], e2);
  EXPECT_TRUE(g.out_links(b).empty());
}

TEST(Graph, FindNodeByName) {
  Graph g;
  g.add_node("x");
  const NodeId y = g.add_node("y");
  EXPECT_EQ(g.find_node("y"), y);
  EXPECT_EQ(g.find_node("missing"), kInvalidNode);
}

TEST(Graph, FindLink) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId c = g.add_node("c");
  const LinkId e = g.add_link(a, b, 1e9);
  EXPECT_EQ(g.find_link(a, b), e);
  EXPECT_EQ(g.find_link(a, c), kInvalidLink);
  EXPECT_EQ(g.find_link(b, a), kInvalidLink);
  EXPECT_EQ(g.find_link(-3, a), kInvalidLink);
}

TEST(Graph, LinksOfType) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_link(a, b, 1e9, 1.0, 1.0, LinkType::kBackbone);
  g.add_link(b, a, 1e9, 1.0, 1.0, LinkType::kInterdomain);
  EXPECT_EQ(g.links_of_type(LinkType::kBackbone).size(), 1u);
  EXPECT_EQ(g.links_of_type(LinkType::kInterdomain).size(), 1u);
  EXPECT_TRUE(g.links_of_type(LinkType::kAccess).empty());
}

TEST(GreatCircle, ZeroForSamePoint) {
  EXPECT_NEAR(GreatCircleMiles(40.0, -74.0, 40.0, -74.0), 0.0, 1e-9);
}

TEST(GreatCircle, NewYorkToLosAngeles) {
  // Known distance ~2450 miles.
  const double d = GreatCircleMiles(40.71, -74.01, 34.05, -118.24);
  EXPECT_GT(d, 2300.0);
  EXPECT_LT(d, 2600.0);
}

TEST(GreatCircle, Symmetric) {
  const double ab = GreatCircleMiles(47.6, -122.3, 29.8, -95.4);
  const double ba = GreatCircleMiles(29.8, -95.4, 47.6, -122.3);
  EXPECT_NEAR(ab, ba, 1e-9);
}

TEST(Graph, GeoDistanceUsesNodeCoordinates) {
  Graph g;
  const NodeId ny = g.add_node("ny", NodeType::kPop, 0, 40.71, -74.01);
  const NodeId dc = g.add_node("dc", NodeType::kPop, 0, 38.91, -77.04);
  const double d = g.geo_distance_miles(ny, dc);
  EXPECT_GT(d, 180.0);  // NY-DC is ~205 miles
  EXPECT_LT(d, 230.0);
}

TEST(Graph, MutableLinkAllowsCapacityEdit) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const LinkId e = g.add_link(a, b, 1e9);
  g.mutable_link(e).capacity_bps = 2e9;
  EXPECT_DOUBLE_EQ(g.link(e).capacity_bps, 2e9);
}

TEST(Graph, NameRoundTrip) {
  Graph g("backbone");
  EXPECT_EQ(g.name(), "backbone");
  g.set_name("other");
  EXPECT_EQ(g.name(), "other");
}

}  // namespace
}  // namespace p4p::net

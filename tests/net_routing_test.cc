#include "net/routing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/synth.h"
#include "net/topology.h"

namespace p4p::net {
namespace {

// A small diamond: a-b-d and a-c-d, with a-c-d cheaper.
Graph Diamond() {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId c = g.add_node("c");
  const NodeId d = g.add_node("d");
  g.add_duplex_link(a, b, 1e9, /*w=*/10.0);
  g.add_duplex_link(b, d, 1e9, /*w=*/10.0);
  g.add_duplex_link(a, c, 1e9, /*w=*/5.0);
  g.add_duplex_link(c, d, 1e9, /*w=*/5.0);
  return g;
}

TEST(Routing, PicksCheapestPath) {
  const Graph g = Diamond();
  const RoutingTable rt(g);
  const auto p = rt.path(0, 3);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(g.link(p[0]).dst, 2);  // via c
  EXPECT_EQ(g.link(p[1]).dst, 3);
  EXPECT_DOUBLE_EQ(rt.route_cost(0, 3), 10.0);
}

TEST(Routing, EmptyPathForSelf) {
  const Graph g = Diamond();
  const RoutingTable rt(g);
  EXPECT_TRUE(rt.path(1, 1).empty());
  EXPECT_DOUBLE_EQ(rt.route_cost(1, 1), 0.0);
}

TEST(Routing, PathLinksAreContiguous) {
  const Graph g = MakeAbilene();
  const RoutingTable rt(g);
  for (NodeId s = 0; s < static_cast<NodeId>(g.node_count()); ++s) {
    for (NodeId t = 0; t < static_cast<NodeId>(g.node_count()); ++t) {
      if (s == t) continue;
      const auto p = rt.path(s, t);
      ASSERT_FALSE(p.empty());
      EXPECT_EQ(g.link(p.front()).src, s);
      EXPECT_EQ(g.link(p.back()).dst, t);
      for (std::size_t i = 1; i < p.size(); ++i) {
        EXPECT_EQ(g.link(p[i - 1]).dst, g.link(p[i]).src);
      }
    }
  }
}

TEST(Routing, CostEqualsSumOfWeights) {
  const Graph g = MakeAbilene();
  const RoutingTable rt(g);
  for (NodeId s = 0; s < static_cast<NodeId>(g.node_count()); ++s) {
    for (NodeId t = 0; t < static_cast<NodeId>(g.node_count()); ++t) {
      if (s == t) continue;
      double sum = 0.0;
      for (LinkId e : rt.path(s, t)) sum += g.link(e).ospf_weight;
      EXPECT_NEAR(sum, rt.route_cost(s, t), 1e-9);
    }
  }
}

TEST(Routing, UnreachableThrows) {
  Graph g;
  g.add_node("a");
  g.add_node("island");
  const RoutingTable rt(g);
  EXPECT_FALSE(rt.reachable(0, 1));
  EXPECT_THROW(rt.path(0, 1), std::runtime_error);
}

TEST(Routing, ReachabilityIsDirected) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_link(a, b, 1e9);  // one-way only
  const RoutingTable rt(g);
  EXPECT_TRUE(rt.reachable(a, b));
  EXPECT_FALSE(rt.reachable(b, a));
}

TEST(Routing, SkipsAccessLinksByDefault) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_duplex_link(a, b, 1e9, 1.0, 1.0, LinkType::kAccess);
  const RoutingTable rt(g);
  EXPECT_FALSE(rt.reachable(a, b));
  const RoutingTable rt_with_access(g, /*include_access=*/true);
  EXPECT_TRUE(rt_with_access.reachable(a, b));
}

TEST(Routing, OnRoute) {
  const Graph g = Diamond();
  const RoutingTable rt(g);
  const auto p = rt.path(0, 3);
  for (LinkId e : p) EXPECT_TRUE(rt.on_route(e, 0, 3));
  // The expensive a-b link is not on the route.
  const LinkId ab = g.find_link(0, 1);
  EXPECT_FALSE(rt.on_route(ab, 0, 3));
  EXPECT_FALSE(rt.on_route(ab, 2, 2));
}

TEST(Routing, HopCountMatchesPathLength) {
  const Graph g = MakeAbilene();
  const RoutingTable rt(g);
  EXPECT_EQ(rt.hop_count(kSeattle, kNewYork),
            static_cast<int>(rt.path(kSeattle, kNewYork).size()));
}

TEST(Routing, LatencyGrowsWithDistance) {
  const Graph g = MakeAbilene();
  const RoutingTable rt(g);
  EXPECT_DOUBLE_EQ(rt.latency_ms(kChicago, kChicago), 0.0);
  const double short_path = rt.latency_ms(kNewYork, kWashingtonDC);
  const double long_path = rt.latency_ms(kSeattle, kNewYork);
  EXPECT_GT(long_path, short_path);
  EXPECT_GT(short_path, 0.0);
}

TEST(Routing, RouteDistanceSumsLinkDistances) {
  const Graph g = Diamond();
  const RoutingTable rt(g);
  // Each link has distance 1.0 by default.
  EXPECT_DOUBLE_EQ(rt.route_distance(0, 3), 2.0);
}

TEST(Routing, TriangleInequalityOfCosts) {
  const Graph g = MakeAbilene();
  const RoutingTable rt(g);
  for (NodeId a = 0; a < static_cast<NodeId>(g.node_count()); ++a) {
    for (NodeId b = 0; b < static_cast<NodeId>(g.node_count()); ++b) {
      for (NodeId c = 0; c < static_cast<NodeId>(g.node_count()); ++c) {
        EXPECT_LE(rt.route_cost(a, c),
                  rt.route_cost(a, b) + rt.route_cost(b, c) + 1e-9);
      }
    }
  }
}

// path_view must agree with the legacy copying path() for every pair — the
// span is a view into the flattened arena the copying API is built on.
void ExpectPathViewMatchesPath(const Graph& g) {
  const RoutingTable rt(g);
  for (NodeId s = 0; s < static_cast<NodeId>(g.node_count()); ++s) {
    for (NodeId t = 0; t < static_cast<NodeId>(g.node_count()); ++t) {
      const auto view = rt.path_view(s, t);
      if (s == t) {
        EXPECT_TRUE(view.empty());
        continue;
      }
      if (!rt.reachable(s, t)) {
        EXPECT_TRUE(view.empty());
        continue;
      }
      const auto legacy = rt.path(s, t);
      ASSERT_EQ(view.size(), legacy.size());
      EXPECT_TRUE(std::equal(view.begin(), view.end(), legacy.begin()));
      EXPECT_EQ(rt.hop_count(s, t), static_cast<int>(view.size()));
    }
  }
}

TEST(Routing, PathViewMatchesPathOnAbilene) { ExpectPathViewMatchesPath(MakeAbilene()); }

TEST(Routing, PathViewMatchesPathOnSynthTopology) {
  SynthConfig cfg;
  cfg.num_pops = 80;
  cfg.num_metros = 16;
  cfg.seed = 7;
  ExpectPathViewMatchesPath(MakeSynthTopology(cfg));
}

TEST(Routing, PathViewRejectsBadIds) {
  const Graph g = Diamond();
  const RoutingTable rt(g);
  EXPECT_THROW(rt.path_view(-1, 0), std::out_of_range);
  EXPECT_THROW(rt.path_view(0, 99), std::out_of_range);
}

TEST(Routing, PathViewSpansStayValidAcrossQueries) {
  const Graph g = MakeAbilene();
  const RoutingTable rt(g);
  const auto first = rt.path_view(kSeattle, kNewYork);
  // Interleave other queries; the span must still read the same links.
  const auto snapshot = std::vector<LinkId>(first.begin(), first.end());
  for (NodeId s = 0; s < static_cast<NodeId>(g.node_count()); ++s) {
    for (NodeId t = 0; t < static_cast<NodeId>(g.node_count()); ++t) {
      (void)rt.path_view(s, t);
    }
  }
  EXPECT_TRUE(std::equal(first.begin(), first.end(), snapshot.begin()));
}

TEST(Routing, DeterministicAcrossRebuilds) {
  const Graph g = MakeAbilene();
  const RoutingTable rt1(g);
  const RoutingTable rt2(g);
  for (NodeId s = 0; s < static_cast<NodeId>(g.node_count()); ++s) {
    for (NodeId t = 0; t < static_cast<NodeId>(g.node_count()); ++t) {
      if (s == t) continue;
      EXPECT_EQ(rt1.path(s, t), rt2.path(s, t));
    }
  }
}

}  // namespace
}  // namespace p4p::net

#include "net/topology.h"

#include <gtest/gtest.h>

#include "net/routing.h"
#include "net/synth.h"

namespace p4p::net {
namespace {

TEST(Abilene, MatchesTable1Counts) {
  const Graph g = MakeAbilene();
  EXPECT_EQ(g.node_count(), 11u);   // Table 1: 11 nodes
  EXPECT_EQ(g.link_count(), 28u);   // Table 1: 28 (directed) links
}

TEST(Abilene, AllLinksAreOc192Backbone) {
  const Graph g = MakeAbilene();
  for (const Link& l : g.links()) {
    EXPECT_DOUBLE_EQ(l.capacity_bps, 10e9);
    EXPECT_EQ(l.type, LinkType::kBackbone);
  }
}

TEST(Abilene, FullyConnected) {
  const Graph g = MakeAbilene();
  const RoutingTable rt(g);
  for (NodeId s = 0; s < 11; ++s) {
    for (NodeId t = 0; t < 11; ++t) {
      EXPECT_TRUE(rt.reachable(s, t)) << s << " -> " << t;
    }
  }
}

TEST(Abilene, KnownAdjacency) {
  const Graph g = MakeAbilene();
  EXPECT_NE(g.find_link(kNewYork, kWashingtonDC), kInvalidLink);
  EXPECT_NE(g.find_link(kWashingtonDC, kNewYork), kInvalidLink);
  EXPECT_NE(g.find_link(kChicago, kNewYork), kInvalidLink);
  EXPECT_NE(g.find_link(kDenver, kKansasCity), kInvalidLink);
  // Not directly connected:
  EXPECT_EQ(g.find_link(kSeattle, kNewYork), kInvalidLink);
  EXPECT_EQ(g.find_link(kLosAngeles, kAtlanta), kInvalidLink);
}

TEST(Abilene, LinkDistancesArePlausible) {
  const Graph g = MakeAbilene();
  const LinkId nydc = g.find_link(kNewYork, kWashingtonDC);
  ASSERT_NE(nydc, kInvalidLink);
  EXPECT_GT(g.link(nydc).distance, 150.0);
  EXPECT_LT(g.link(nydc).distance, 260.0);
  const LinkId sea_den = g.find_link(kSeattle, kDenver);
  ASSERT_NE(sea_den, kInvalidLink);
  EXPECT_GT(g.link(sea_den).distance, 800.0);
}

TEST(Abilene, CoastToCoastTakesMultipleHops) {
  const Graph g = MakeAbilene();
  const RoutingTable rt(g);
  EXPECT_GE(rt.hop_count(kSeattle, kNewYork), 3);
  EXPECT_GE(rt.hop_count(kSunnyvale, kWashingtonDC), 3);
}

TEST(Abilene, NodeNamesUnique) {
  const Graph g = MakeAbilene();
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    for (std::size_t j = i + 1; j < g.node_count(); ++j) {
      EXPECT_NE(g.node(static_cast<NodeId>(i)).name,
                g.node(static_cast<NodeId>(j)).name);
    }
  }
}

struct SynthCase {
  const char* name;
  int pops;
  int metros;
};

class SynthTopologyTest : public ::testing::TestWithParam<SynthCase> {};

TEST_P(SynthTopologyTest, HasRequestedPopCount) {
  SynthConfig c;
  c.num_pops = GetParam().pops;
  c.num_metros = GetParam().metros;
  c.seed = 7;
  const Graph g = MakeSynthTopology(c);
  EXPECT_EQ(g.node_count(), static_cast<std::size_t>(GetParam().pops));
}

TEST_P(SynthTopologyTest, FullyConnected) {
  SynthConfig c;
  c.num_pops = GetParam().pops;
  c.num_metros = GetParam().metros;
  c.seed = 7;
  const Graph g = MakeSynthTopology(c);
  const RoutingTable rt(g);
  for (NodeId s = 0; s < static_cast<NodeId>(g.node_count()); ++s) {
    for (NodeId t = 0; t < static_cast<NodeId>(g.node_count()); ++t) {
      EXPECT_TRUE(rt.reachable(s, t)) << GetParam().name << ": " << s << "->" << t;
    }
  }
}

TEST_P(SynthTopologyTest, DeterministicForSeed) {
  SynthConfig c;
  c.num_pops = GetParam().pops;
  c.num_metros = GetParam().metros;
  c.seed = 99;
  const Graph g1 = MakeSynthTopology(c);
  const Graph g2 = MakeSynthTopology(c);
  ASSERT_EQ(g1.link_count(), g2.link_count());
  for (std::size_t e = 0; e < g1.link_count(); ++e) {
    EXPECT_EQ(g1.link(static_cast<LinkId>(e)).src, g2.link(static_cast<LinkId>(e)).src);
    EXPECT_EQ(g1.link(static_cast<LinkId>(e)).dst, g2.link(static_cast<LinkId>(e)).dst);
    EXPECT_DOUBLE_EQ(g1.link(static_cast<LinkId>(e)).distance,
                     g2.link(static_cast<LinkId>(e)).distance);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SynthTopologyTest,
                         ::testing::Values(SynthCase{"tiny", 3, 2},
                                           SynthCase{"small", 10, 4},
                                           SynthCase{"ispA", 20, 8},
                                           SynthCase{"ispC", 37, 14},
                                           SynthCase{"ispB", 52, 20}),
                         [](const auto& info) { return info.param.name; });

TEST(SynthTopology, RejectsBadCounts) {
  SynthConfig c;
  c.num_pops = 2;
  c.num_metros = 5;
  EXPECT_THROW(MakeSynthTopology(c), std::invalid_argument);
  c.num_pops = 0;
  c.num_metros = 0;
  EXPECT_THROW(MakeSynthTopology(c), std::invalid_argument);
}

TEST(SynthTopology, IspAMatchesTable1) {
  const Graph g = MakeIspA();
  EXPECT_EQ(g.node_count(), 20u);
  EXPECT_EQ(g.name(), "ISP-A");
}

TEST(SynthTopology, IspBMatchesTable1) {
  const Graph g = MakeIspB();
  EXPECT_EQ(g.node_count(), 52u);
  // Field-test accounting needs multiple metros.
  int max_metro = 0;
  for (const auto& n : g.nodes()) max_metro = std::max(max_metro, n.metro);
  EXPECT_GE(max_metro, 10);
}

TEST(SynthTopology, IspCMatchesTable1AndIsInternational) {
  const Graph g = MakeIspC();
  EXPECT_EQ(g.node_count(), 37u);
  // International topology spans wide longitudes.
  double min_lon = 1e9;
  double max_lon = -1e9;
  for (const auto& n : g.nodes()) {
    min_lon = std::min(min_lon, n.longitude);
    max_lon = std::max(max_lon, n.longitude);
  }
  EXPECT_GT(max_lon - min_lon, 100.0);
}

TEST(SynthTopology, MetroPopsClusterGeographically) {
  const Graph g = MakeIspB();
  // PoPs in the same metro should be within ~2 degrees of each other.
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    for (std::size_t j = i + 1; j < g.node_count(); ++j) {
      const auto& a = g.node(static_cast<NodeId>(i));
      const auto& b = g.node(static_cast<NodeId>(j));
      if (a.metro != b.metro) continue;
      EXPECT_LT(std::abs(a.latitude - b.latitude), 2.0);
      EXPECT_LT(std::abs(a.longitude - b.longitude), 2.0);
    }
  }
}

TEST(SynthTopology, ZipfSkewConcentratesPops) {
  // Metro 0 (highest Zipf weight) should have at least as many PoPs as the
  // median metro.
  const Graph g = MakeIspB();
  std::vector<int> counts(20, 0);
  for (const auto& n : g.nodes()) ++counts[static_cast<std::size_t>(n.metro)];
  std::vector<int> sorted = counts;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GE(counts[0], sorted[sorted.size() / 2]);
}

}  // namespace
}  // namespace p4p::net

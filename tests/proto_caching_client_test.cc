#include "proto/caching_client.h"

#include <gtest/gtest.h>

#include "net/topology.h"

namespace p4p::proto {
namespace {

class CachingClientTest : public ::testing::Test {
 protected:
  CachingClientTest()
      : graph_(net::MakeAbilene()), routing_(graph_), tracker_(graph_, routing_),
        service_(&tracker_) {}

  CachingPortalClient MakeClient(double ttl) {
    return CachingPortalClient(
        std::make_unique<InProcessTransport>(service_.handler()),
        [this] { return now_; }, ttl);
  }

  net::Graph graph_;
  net::RoutingTable routing_;
  core::ITracker tracker_;
  ITrackerService service_;
  double now_ = 0.0;
};

TEST_F(CachingClientTest, Validation) {
  EXPECT_THROW(CachingPortalClient(
                   std::make_unique<InProcessTransport>(service_.handler()),
                   nullptr, 10.0),
               std::invalid_argument);
  EXPECT_THROW(CachingPortalClient(
                   std::make_unique<InProcessTransport>(service_.handler()),
                   [] { return 0.0; }, 0.0),
               std::invalid_argument);
}

TEST_F(CachingClientTest, FirstAccessFetches) {
  auto client = MakeClient(60.0);
  const auto& view = client.GetExternalView();
  EXPECT_EQ(view.size(), tracker_.num_pids());
  EXPECT_EQ(client.fetch_count(), 1u);
  EXPECT_EQ(client.hit_count(), 0u);
}

TEST_F(CachingClientTest, RepeatAccessHitsCache) {
  auto client = MakeClient(60.0);
  client.GetExternalView();
  for (int i = 0; i < 10; ++i) {
    now_ += 1.0;
    client.GetExternalView();
  }
  EXPECT_EQ(client.fetch_count(), 1u);
  EXPECT_EQ(client.hit_count(), 10u);
}

TEST_F(CachingClientTest, TtlExpiryValidatesWhenVersionUnchanged) {
  // Past the TTL with unchanged server prices, the refresh is a conditional
  // request answered NotModified: the matrix is kept, no re-transfer.
  auto client = MakeClient(10.0);
  client.GetExternalView();
  now_ = 10.5;
  client.GetExternalView();
  EXPECT_EQ(client.fetch_count(), 1u);
  EXPECT_EQ(client.validation_count(), 1u);
  // The validation restarts the TTL window.
  now_ = 15.0;
  client.GetExternalView();
  EXPECT_EQ(client.hit_count(), 1u);
}

TEST_F(CachingClientTest, TtlExpiryRefetchesWhenVersionMoved) {
  auto client = MakeClient(10.0);
  client.GetExternalView();
  std::vector<double> traffic(graph_.link_count(), 1e9);
  tracker_.Update(traffic);
  now_ = 10.5;
  client.GetExternalView();
  EXPECT_EQ(client.fetch_count(), 2u);
  EXPECT_EQ(client.validation_count(), 0u);
}

TEST_F(CachingClientTest, RefetchSeesUpdatedPrices) {
  auto client = MakeClient(5.0);
  const auto before = client.GetPDistances(net::kNewYork);
  // Prices change server-side.
  std::vector<double> traffic(graph_.link_count(), 0.0);
  traffic[static_cast<std::size_t>(
      graph_.find_link(net::kWashingtonDC, net::kNewYork))] = 9e9;
  for (int i = 0; i < 10; ++i) tracker_.Update(traffic);
  // Within the TTL: still the old row.
  const auto cached = client.GetPDistances(net::kNewYork);
  EXPECT_EQ(before, cached);
  // Past the TTL: fresh row differs.
  now_ = 6.0;
  const auto fresh = client.GetPDistances(net::kNewYork);
  EXPECT_NE(before, fresh);
}

TEST_F(CachingClientTest, InvalidateForcesRefetch) {
  auto client = MakeClient(1e9);
  client.GetExternalView();
  client.Invalidate();
  client.GetExternalView();
  EXPECT_EQ(client.fetch_count(), 2u);
}

TEST_F(CachingClientTest, RowMatchesDirectQuery) {
  auto client = MakeClient(60.0);
  const auto row = client.GetPDistances(net::kChicago);
  const auto expected = tracker_.GetPDistances(net::kChicago);
  ASSERT_EQ(row.size(), expected.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    EXPECT_DOUBLE_EQ(row[j], expected[j]);
  }
}

TEST_F(CachingClientTest, RowRangeChecked) {
  auto client = MakeClient(60.0);
  EXPECT_THROW(client.GetPDistances(-1), std::out_of_range);
  EXPECT_THROW(client.GetPDistances(99), std::out_of_range);
}

TEST_F(CachingClientTest, ManySelectionsOneFetch) {
  // The design goal: thousands of application decisions per portal query.
  auto client = MakeClient(300.0);
  for (int i = 0; i < 1000; ++i) {
    (void)client.GetPDistances(static_cast<core::Pid>(i % tracker_.num_pids()));
  }
  EXPECT_EQ(client.fetch_count(), 1u);
}

}  // namespace
}  // namespace p4p::proto

#include "proto/caching_client.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "net/topology.h"
#include "support/fault_injection.h"

namespace p4p::proto {
namespace {

/// In-process transport with a kill switch: models "every replica
/// unreachable" for the stale-while-unreachable tests.
class FlakyTransport final : public Transport {
 public:
  FlakyTransport(Handler backend, const bool* down)
      : backend_(std::move(backend)), down_(down) {}
  std::vector<std::uint8_t> Call(std::span<const std::uint8_t> request) override {
    if (*down_) throw std::runtime_error("FlakyTransport: unreachable");
    return backend_(request);
  }

 private:
  Handler backend_;
  const bool* down_;
};

class CachingClientTest : public ::testing::Test {
 protected:
  CachingClientTest()
      : graph_(net::MakeAbilene()), routing_(graph_), tracker_(graph_, routing_),
        service_(&tracker_) {}

  CachingPortalClient MakeClient(double ttl) {
    return CachingPortalClient(
        std::make_unique<InProcessTransport>(service_.handler()),
        [this] { return now_; }, ttl);
  }

  net::Graph graph_;
  net::RoutingTable routing_;
  core::ITracker tracker_;
  ITrackerService service_;
  double now_ = 0.0;
};

TEST_F(CachingClientTest, Validation) {
  EXPECT_THROW(CachingPortalClient(
                   std::make_unique<InProcessTransport>(service_.handler()),
                   nullptr, 10.0),
               std::invalid_argument);
  EXPECT_THROW(CachingPortalClient(
                   std::make_unique<InProcessTransport>(service_.handler()),
                   [] { return 0.0; }, 0.0),
               std::invalid_argument);
}

TEST_F(CachingClientTest, FirstAccessFetches) {
  auto client = MakeClient(60.0);
  const auto& view = client.GetExternalView();
  EXPECT_EQ(view.size(), tracker_.num_pids());
  EXPECT_EQ(client.fetch_count(), 1u);
  EXPECT_EQ(client.hit_count(), 0u);
}

TEST_F(CachingClientTest, RepeatAccessHitsCache) {
  auto client = MakeClient(60.0);
  client.GetExternalView();
  for (int i = 0; i < 10; ++i) {
    now_ += 1.0;
    client.GetExternalView();
  }
  EXPECT_EQ(client.fetch_count(), 1u);
  EXPECT_EQ(client.hit_count(), 10u);
}

TEST_F(CachingClientTest, TtlExpiryValidatesWhenVersionUnchanged) {
  // Past the TTL with unchanged server prices, the refresh is a conditional
  // request answered NotModified: the matrix is kept, no re-transfer.
  auto client = MakeClient(10.0);
  client.GetExternalView();
  now_ = 10.5;
  client.GetExternalView();
  EXPECT_EQ(client.fetch_count(), 1u);
  EXPECT_EQ(client.validation_count(), 1u);
  // The validation restarts the TTL window.
  now_ = 15.0;
  client.GetExternalView();
  EXPECT_EQ(client.hit_count(), 1u);
}

TEST_F(CachingClientTest, TtlExpiryRefetchesWhenVersionMoved) {
  auto client = MakeClient(10.0);
  client.GetExternalView();
  std::vector<double> traffic(graph_.link_count(), 1e9);
  tracker_.Update(traffic);
  now_ = 10.5;
  client.GetExternalView();
  EXPECT_EQ(client.fetch_count(), 2u);
  EXPECT_EQ(client.validation_count(), 0u);
}

TEST_F(CachingClientTest, RefetchSeesUpdatedPrices) {
  auto client = MakeClient(5.0);
  const auto before = client.GetPDistances(net::kNewYork);
  // Prices change server-side.
  std::vector<double> traffic(graph_.link_count(), 0.0);
  traffic[static_cast<std::size_t>(
      graph_.find_link(net::kWashingtonDC, net::kNewYork))] = 9e9;
  for (int i = 0; i < 10; ++i) tracker_.Update(traffic);
  // Within the TTL: still the old row.
  const auto cached = client.GetPDistances(net::kNewYork);
  EXPECT_EQ(before, cached);
  // Past the TTL: fresh row differs.
  now_ = 6.0;
  const auto fresh = client.GetPDistances(net::kNewYork);
  EXPECT_NE(before, fresh);
}

TEST_F(CachingClientTest, InvalidateForcesRefetch) {
  auto client = MakeClient(1e9);
  client.GetExternalView();
  client.Invalidate();
  client.GetExternalView();
  EXPECT_EQ(client.fetch_count(), 2u);
}

TEST_F(CachingClientTest, RowMatchesDirectQuery) {
  auto client = MakeClient(60.0);
  const auto row = client.GetPDistances(net::kChicago);
  const auto expected = tracker_.GetPDistances(net::kChicago);
  ASSERT_EQ(row.size(), expected.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    EXPECT_DOUBLE_EQ(row[j], expected[j]);
  }
}

TEST_F(CachingClientTest, RowRangeChecked) {
  auto client = MakeClient(60.0);
  EXPECT_THROW(client.GetPDistances(-1), std::out_of_range);
  EXPECT_THROW(client.GetPDistances(99), std::out_of_range);
}

TEST_F(CachingClientTest, ManySelectionsOneFetch) {
  // The design goal: thousands of application decisions per portal query.
  auto client = MakeClient(300.0);
  for (int i = 0; i < 1000; ++i) {
    (void)client.GetPDistances(static_cast<core::Pid>(i % tracker_.num_pids()));
  }
  EXPECT_EQ(client.fetch_count(), 1u);
}

// --- stale-while-unreachable degradation ------------------------------------

class CachingClientStaleTest : public CachingClientTest {
 protected:
  CachingPortalClient MakeFlaky(double ttl, std::size_t stale_cap) {
    return CachingPortalClient(
        std::make_unique<FlakyTransport>(service_.handler(), &down_),
        [this] { return now_; }, ttl, stale_cap);
  }
  bool down_ = false;
};

TEST_F(CachingClientStaleTest, ExpiredMatrixKeepsServingUpToCap) {
  auto client = MakeFlaky(10.0, 3);
  const auto warm = client.GetExternalView();
  down_ = true;
  now_ = 11.0;
  for (std::size_t i = 1; i <= 3; ++i) {
    const auto& view = client.GetExternalView();  // refresh fails, stale serve
    EXPECT_EQ(view.size(), warm.size());
    EXPECT_TRUE(client.stale());
    EXPECT_EQ(client.stale_serve_count(), i);
  }
  EXPECT_EQ(client.stale_served_total(), 3u);
  EXPECT_EQ(client.fetch_count(), 1u);
  // The budget is spent: the failure now surfaces, and keeps surfacing.
  EXPECT_THROW(client.GetExternalView(), std::exception);
  EXPECT_EQ(client.TryGetExternalView(), nullptr);
  EXPECT_EQ(client.stale_served_total(), 3u);
}

TEST_F(CachingClientStaleTest, FirstSuccessfulRefreshClearsStaleness) {
  auto client = MakeFlaky(10.0, 5);
  client.GetExternalView();
  down_ = true;
  now_ = 11.0;
  client.GetExternalView();
  client.GetExternalView();
  ASSERT_EQ(client.stale_serve_count(), 2u);
  // Replicas return: the very next access refreshes (fetched_at was never
  // advanced while stale) and the streak resets; the cumulative total stays.
  down_ = false;
  client.GetExternalView();
  EXPECT_FALSE(client.stale());
  EXPECT_EQ(client.stale_serve_count(), 0u);
  EXPECT_EQ(client.stale_served_total(), 2u);
  EXPECT_EQ(client.validation_count(), 1u);  // version unmoved: NotModified
}

TEST_F(CachingClientStaleTest, ZeroCapDisablesStaleServing) {
  auto client = MakeFlaky(10.0, 0);
  client.GetExternalView();
  down_ = true;
  now_ = 11.0;
  EXPECT_THROW(client.GetExternalView(), std::exception);
  EXPECT_EQ(client.stale_served_total(), 0u);
}

TEST_F(CachingClientStaleTest, ColdFailureHasNothingToServeStale) {
  auto client = MakeFlaky(10.0, 100);
  down_ = true;
  EXPECT_THROW(client.GetExternalView(), std::exception);
  EXPECT_EQ(client.TryGetExternalView(), nullptr);
  down_ = false;
  EXPECT_NE(client.TryGetExternalView(), nullptr);
  EXPECT_EQ(client.fetch_count(), 1u);
}

TEST_F(CachingClientStaleTest, StaleServesRemainingTracksBudget) {
  auto client = MakeFlaky(10.0, 3);
  EXPECT_EQ(client.stale_serves_remaining(), 3u);  // full budget when healthy
  client.GetExternalView();
  EXPECT_EQ(client.stale_serves_remaining(), 3u);
  down_ = true;
  now_ = 11.0;
  client.GetExternalView();
  EXPECT_EQ(client.stale_serves_remaining(), 2u);
  client.GetExternalView();
  EXPECT_EQ(client.stale_serves_remaining(), 1u);
  client.GetExternalView();
  EXPECT_EQ(client.stale_serves_remaining(), 0u);
  // Remaining 0 means exactly this: the next failed refresh throws.
  EXPECT_THROW(client.GetExternalView(), std::exception);
  EXPECT_EQ(client.stale_serves_remaining(), 0u);
  // Recovery restores the full budget.
  down_ = false;
  client.GetExternalView();
  EXPECT_EQ(client.stale_serves_remaining(), 3u);
}

TEST_F(CachingClientStaleTest, EnableUdpValidationResetsStalenessBudget) {
  auto client = MakeFlaky(10.0, 2);
  client.GetExternalView();
  down_ = true;
  now_ = 11.0;
  client.GetExternalView();
  client.GetExternalView();
  ASSERT_TRUE(client.stale());
  ASSERT_EQ(client.stale_serves_remaining(), 0u);
  // Reconfiguring the validation path starts a fresh degraded-mode budget:
  // stale serves accumulated against the old configuration do not count.
  // (The new UDP path drops everything, so refreshes still fail and the
  // next access draws on the fresh budget.)
  testsupport::FaultProfile black_hole;
  black_hole.drop_rate = 1.0;
  client.EnableUdpValidation(std::make_unique<UdpValidationClient>(
      std::make_unique<testsupport::FaultInjectingTransport>(
          service_.validation_handler(), black_hole, /*seed=*/1),
      UdpValidationOptions{}, [] { return std::uint64_t{42}; }));
  EXPECT_FALSE(client.stale());
  EXPECT_EQ(client.stale_serves_remaining(), 2u);
  client.GetExternalView();  // stale serve against the new budget
  EXPECT_EQ(client.stale_serves_remaining(), 1u);
  EXPECT_EQ(client.stale_served_total(), 3u);  // cumulative total is untouched
}

TEST_F(CachingClientStaleTest, InvalidateDropsStalenessState) {
  auto client = MakeFlaky(10.0, 3);
  client.GetExternalView();
  down_ = true;
  now_ = 11.0;
  client.GetExternalView();
  ASSERT_TRUE(client.stale());
  client.Invalidate();
  down_ = false;
  client.GetExternalView();
  EXPECT_FALSE(client.stale());
  EXPECT_EQ(client.fetch_count(), 2u);  // cold fetch: the token was dropped
  EXPECT_EQ(client.validation_count(), 0u);
}

// --- Invalidate vs. the UDP fast path (regression) ---------------------------

TEST_F(CachingClientTest, InvalidateSkipsUdpAndGoesStraightToFullFetch) {
  // Regression: after Invalidate(), the next refresh must be a full TCP
  // fetch — never a UDP validation of the token that was just forgotten.
  auto client = MakeClient(10.0);
  UdpValidationOptions options;
  options.max_tries = 2;
  options.initial_timeout = std::chrono::milliseconds(5);
  auto next_nonce = std::make_shared<std::uint64_t>(0);
  auto udp = std::make_unique<UdpValidationClient>(
      std::make_unique<testsupport::FaultInjectingTransport>(
          service_.validation_handler(), testsupport::FaultProfile{}, /*seed=*/1),
      options, [next_nonce] { return ++*next_nonce; });
  const auto* udp_raw = udp.get();
  client.EnableUdpValidation(std::move(udp));

  client.GetExternalView();
  now_ = 11.0;  // TTL refresh: the UDP fast path answers NotModified
  client.GetExternalView();
  ASSERT_EQ(client.udp_validation_count(), 1u);
  const auto datagrams_before = udp_raw->sent_count();

  client.Invalidate();
  client.GetExternalView();
  // Full TCP fetch, zero datagrams: UDP was not consulted.
  EXPECT_EQ(client.fetch_count(), 2u);
  EXPECT_EQ(udp_raw->sent_count(), datagrams_before);
  EXPECT_EQ(client.udp_validation_count(), 1u);
  EXPECT_EQ(client.udp_fallback_count(), 0u);

  // The UDP path itself is still live: the next TTL refresh validates the
  // re-fetched token over UDP again.
  now_ = 22.0;
  client.GetExternalView();
  EXPECT_EQ(client.udp_validation_count(), 2u);
  EXPECT_GT(udp_raw->sent_count(), datagrams_before);
  EXPECT_EQ(client.fetch_count(), 2u);
}

}  // namespace
}  // namespace p4p::proto

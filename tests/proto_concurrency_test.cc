// Concurrency hammer for the portal serving path: N client threads fetch
// views over real TCP while a writer thread keeps mutating prices. Every
// response must decode to a self-consistent (version, matrix) pair — a torn
// read would surface as a matrix mixing two price vectors.
//
// The check exploits static-price mode: with every link priced k, each
// p-distance is exactly k * hopcount(i, j). A response matrix is therefore
// consistent iff a single scalar lambda satisfies m = lambda * hopcount for
// the whole mesh. Runs under TSan in CI to catch data races the assertion
// itself cannot see.
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/itracker.h"
#include "net/topology.h"
#include "proto/service.h"
#include "proto/transport.h"

namespace p4p::proto {
namespace {

// True iff `m` equals lambda * `hops` for one scalar lambda >= 0.
bool SelfConsistent(const core::PDistanceMatrix& m,
                    const core::PDistanceMatrix& hops) {
  if (m.size() != hops.size()) return false;
  double lambda = -1.0;
  for (core::Pid i = 0; i < m.size(); ++i) {
    for (core::Pid j = 0; j < m.size(); ++j) {
      const double h = hops.at(i, j);
      if (h == 0.0) {
        if (m.at(i, j) != 0.0) return false;
        continue;
      }
      const double ratio = m.at(i, j) / h;
      if (lambda < 0.0) {
        lambda = ratio;
      } else if (std::abs(ratio - lambda) > 1e-9 * std::max(1.0, lambda)) {
        return false;
      }
    }
  }
  return true;
}

TEST(PortalConcurrency, HammeredServiceServesConsistentSnapshots) {
  net::Graph graph = net::MakeAbilene();
  net::RoutingTable routing(graph);
  core::ITrackerConfig config;
  config.mode = core::PriceMode::kStatic;
  core::ITracker tracker(graph, routing, config);

  // Unit prices give the pure hopcount mesh as the reference shape.
  std::vector<double> ones(graph.link_count(), 1.0);
  tracker.SetStaticPrices(ones);
  const core::PDistanceMatrix hops = tracker.external_view();

  ITrackerService service(&tracker);
  TcpServer server(0, service.shared_handler(), 2);

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 60;
  std::atomic<bool> stop{false};
  std::atomic<int> inconsistent{0};
  std::atomic<int> version_regressions{0};

  std::thread writer([&] {
    double k = 2.0;
    std::vector<double> prices(graph.link_count());
    while (!stop.load(std::memory_order_acquire)) {
      prices.assign(prices.size(), k);
      tracker.SetStaticPrices(prices);
      k = (k < 1e6) ? k + 1.0 : 2.0;
      std::this_thread::yield();  // don't starve readers on small machines
    }
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      PortalClient client(std::make_unique<TcpClient>(server.port()));
      std::uint64_t last_version = 0;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const auto full = client.GetExternalViewIfModified(0);
        ASSERT_TRUE(full.has_value());
        if (!SelfConsistent(full->first, hops)) ++inconsistent;
        if (full->second < last_version) ++version_regressions;
        last_version = full->second;
        // Conditional revalidation: either NotModified or a newer,
        // equally consistent snapshot.
        const auto cond = client.GetExternalViewIfModified(last_version);
        if (cond.has_value()) {
          if (!SelfConsistent(cond->first, hops)) ++inconsistent;
          if (cond->second <= last_version) ++version_regressions;
          last_version = cond->second;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_release);
  writer.join();

  EXPECT_EQ(inconsistent.load(), 0);
  EXPECT_EQ(version_regressions.load(), 0);
}

TEST(PortalConcurrency, InProcessReadersRaceWriter) {
  // Same invariant without the socket layer: readers hit the service's
  // handler directly, maximizing pressure on the snapshot/cache path.
  net::Graph graph = net::MakeAbilene();
  net::RoutingTable routing(graph);
  core::ITrackerConfig config;
  config.mode = core::PriceMode::kStatic;
  core::ITracker tracker(graph, routing, config);
  std::vector<double> ones(graph.link_count(), 1.0);
  tracker.SetStaticPrices(ones);
  const core::PDistanceMatrix hops = tracker.external_view();

  ITrackerService service(&tracker);
  const auto handler = service.shared_handler();

  std::atomic<bool> stop{false};
  std::atomic<int> inconsistent{0};
  std::thread writer([&] {
    double k = 2.0;
    std::vector<double> prices(graph.link_count());
    while (!stop.load(std::memory_order_acquire)) {
      prices.assign(prices.size(), k);
      tracker.SetStaticPrices(prices);
      k += 1.0;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  for (int c = 0; c < 4; ++c) {
    readers.emplace_back([&] {
      const auto req = Encode(GetExternalViewReq{});
      for (int i = 0; i < 200; ++i) {
        const auto resp = handler(req);
        ASSERT_NE(resp, nullptr);
        const auto decoded = Decode(*resp);
        ASSERT_TRUE(decoded.has_value());
        const auto* view = std::get_if<GetExternalViewResp>(&*decoded);
        ASSERT_NE(view, nullptr);
        core::PDistanceMatrix m(view->num_pids);
        for (core::Pid a = 0; a < view->num_pids; ++a) {
          for (core::Pid b = 0; b < view->num_pids; ++b) {
            m.set(a, b,
                  view->distances[static_cast<std::size_t>(a) *
                                      static_cast<std::size_t>(view->num_pids) +
                                  static_cast<std::size_t>(b)]);
          }
        }
        if (!SelfConsistent(m, hops)) ++inconsistent;
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_EQ(inconsistent.load(), 0);
}

TEST(PortalConcurrency, UdpValidationHammeredWhileRepublishing) {
  // One UdpValidationServer hammered by 8 threads of validating clients
  // while a writer republishes snapshots. Versions are published as a
  // monotone counter, so "the answer's token was current at some point
  // during the run" is exactly: first_version <= token <= version-now.
  net::Graph graph = net::MakeAbilene();
  net::RoutingTable routing(graph);
  core::ITrackerConfig config;
  config.mode = core::PriceMode::kStatic;
  core::ITracker tracker(graph, routing, config);
  std::vector<double> ones(graph.link_count(), 1.0);
  tracker.SetStaticPrices(ones);
  const std::uint64_t first_version = tracker.version();

  ITrackerService service(&tracker);
  UdpValidationServer server(0, service.validation_handler());

  constexpr int kClients = 8;
  constexpr int kCallsPerClient = 40;
  std::atomic<bool> stop{false};
  std::atomic<int> bad_versions{0};
  std::atomic<int> bad_not_modified{0};
  std::atomic<int> answers{0};

  std::thread writer([&] {
    double k = 2.0;
    std::vector<double> prices(graph.link_count());
    while (!stop.load(std::memory_order_acquire)) {
      prices.assign(prices.size(), k);
      tracker.SetStaticPrices(prices);
      k = (k < 1e6) ? k + 1.0 : 2.0;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      UdpValidationOptions options;
      options.max_tries = 3;
      options.initial_timeout = std::chrono::milliseconds(100);
      options.max_timeout = std::chrono::milliseconds(300);
      UdpValidationClient client(
          std::make_unique<UdpClientTransport>(server.port()), options);
      std::uint64_t held = 0;  // token from the previous answer
      for (int i = 0; i < kCallsPerClient; ++i) {
        const auto outcome = client.Validate(held);
        if (!outcome) continue;  // loopback loss is rare but legal
        ++answers;
        // The token must have been current at some point during the run.
        if (outcome->version < first_version ||
            outcome->version > tracker.version()) {
          ++bad_versions;
        }
        // NotModified is only a correct answer for the exact token asked.
        if (outcome->not_modified && outcome->version != held) {
          ++bad_not_modified;
        }
        held = outcome->version;
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_release);
  writer.join();

  EXPECT_EQ(bad_versions.load(), 0);
  EXPECT_EQ(bad_not_modified.load(), 0);
  EXPECT_GT(answers.load(), 0);
  EXPECT_GE(server.answered_count(), static_cast<std::uint64_t>(answers.load()));
}

}  // namespace
}  // namespace p4p::proto

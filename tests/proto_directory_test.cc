#include "proto/directory.h"

#include <gtest/gtest.h>

namespace p4p::proto {
namespace {

TEST(Directory, ServiceNameFormat) {
  EXPECT_EQ(P4pServiceName("isp-b.net"), "_p4p._tcp.isp-b.net");
}

TEST(Directory, UnknownDomainIsNullopt) {
  PortalDirectory dir;
  std::mt19937_64 rng(1);
  EXPECT_FALSE(dir.Resolve("nowhere.net", rng).has_value());
  EXPECT_EQ(dir.domain_count(), 0u);
}

TEST(Directory, Validation) {
  PortalDirectory dir;
  EXPECT_THROW(dir.AddRecord("", {"h", 80, 0, 1}), std::invalid_argument);
  EXPECT_THROW(dir.AddRecord("d", {"", 80, 0, 1}), std::invalid_argument);
  EXPECT_THROW(dir.AddRecord("d", {"h", 0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(dir.AddRecord("d", {"h", 80, -1, 1}), std::invalid_argument);
  EXPECT_THROW(dir.AddRecord("d", {"h", 80, 0, -1}), std::invalid_argument);
}

TEST(Directory, SingleRecordResolves) {
  PortalDirectory dir;
  dir.AddRecord("isp.net", {"10.0.0.1", 6671, 0, 1});
  std::mt19937_64 rng(2);
  const auto r = dir.Resolve("isp.net", rng);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->target, "10.0.0.1");
  EXPECT_EQ(r->port, 6671);
}

TEST(Directory, LowestPriorityWins) {
  PortalDirectory dir;
  dir.AddRecord("isp.net", {"backup", 1, 10, 100});
  dir.AddRecord("isp.net", {"primary", 2, 0, 1});
  std::mt19937_64 rng(3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(dir.Resolve("isp.net", rng)->target, "primary");
  }
}

TEST(Directory, WeightsBiasSelectionWithinClass) {
  PortalDirectory dir;
  dir.AddRecord("isp.net", {"heavy", 1, 0, 9});
  dir.AddRecord("isp.net", {"light", 2, 0, 1});
  std::mt19937_64 rng(4);
  int heavy = 0;
  for (int i = 0; i < 1000; ++i) {
    if (dir.Resolve("isp.net", rng)->target == "heavy") ++heavy;
  }
  EXPECT_GT(heavy, 800);
  EXPECT_LT(heavy, 980);
}

TEST(Directory, ZeroWeightsFallBackToUniform) {
  PortalDirectory dir;
  dir.AddRecord("isp.net", {"a", 1, 0, 0});
  dir.AddRecord("isp.net", {"b", 2, 0, 0});
  std::mt19937_64 rng(5);
  int a = 0;
  for (int i = 0; i < 400; ++i) {
    if (dir.Resolve("isp.net", rng)->target == "a") ++a;
  }
  EXPECT_GT(a, 100);
  EXPECT_LT(a, 300);
}

TEST(Directory, RecordsPreserveOrder) {
  PortalDirectory dir;
  dir.AddRecord("isp.net", {"one", 1, 0, 1});
  dir.AddRecord("isp.net", {"two", 2, 1, 1});
  const auto records = dir.Records("isp.net");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].target, "one");
  EXPECT_EQ(records[1].target, "two");
  EXPECT_TRUE(dir.Records("other").empty());
  EXPECT_EQ(dir.domain_count(), 1u);
}

TEST(Directory, DomainsAreIndependent) {
  PortalDirectory dir;
  dir.AddRecord("a.net", {"portal-a", 1, 0, 1});
  dir.AddRecord("b.net", {"portal-b", 2, 0, 1});
  std::mt19937_64 rng(6);
  EXPECT_EQ(dir.Resolve("a.net", rng)->target, "portal-a");
  EXPECT_EQ(dir.Resolve("b.net", rng)->target, "portal-b");
}

}  // namespace
}  // namespace p4p::proto

#include "proto/directory.h"

#include <gtest/gtest.h>

#include <set>

namespace p4p::proto {
namespace {

TEST(Directory, ServiceNameFormat) {
  EXPECT_EQ(P4pServiceName("isp-b.net"), "_p4p._tcp.isp-b.net");
}

TEST(Directory, UnknownDomainIsNullopt) {
  PortalDirectory dir;
  std::mt19937_64 rng(1);
  EXPECT_FALSE(dir.Resolve("nowhere.net", rng).has_value());
  EXPECT_EQ(dir.domain_count(), 0u);
}

TEST(Directory, Validation) {
  PortalDirectory dir;
  EXPECT_THROW(dir.AddRecord("", {"h", 80, 0, 1}), std::invalid_argument);
  EXPECT_THROW(dir.AddRecord("d", {"", 80, 0, 1}), std::invalid_argument);
  EXPECT_THROW(dir.AddRecord("d", {"h", 0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(dir.AddRecord("d", {"h", 80, -1, 1}), std::invalid_argument);
  EXPECT_THROW(dir.AddRecord("d", {"h", 80, 0, -1}), std::invalid_argument);
}

TEST(Directory, SingleRecordResolves) {
  PortalDirectory dir;
  dir.AddRecord("isp.net", {"10.0.0.1", 6671, 0, 1});
  std::mt19937_64 rng(2);
  const auto r = dir.Resolve("isp.net", rng);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->target, "10.0.0.1");
  EXPECT_EQ(r->port, 6671);
}

TEST(Directory, LowestPriorityWins) {
  PortalDirectory dir;
  dir.AddRecord("isp.net", {"backup", 1, 10, 100});
  dir.AddRecord("isp.net", {"primary", 2, 0, 1});
  std::mt19937_64 rng(3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(dir.Resolve("isp.net", rng)->target, "primary");
  }
}

TEST(Directory, WeightsBiasSelectionWithinClass) {
  PortalDirectory dir;
  dir.AddRecord("isp.net", {"heavy", 1, 0, 9});
  dir.AddRecord("isp.net", {"light", 2, 0, 1});
  std::mt19937_64 rng(4);
  int heavy = 0;
  for (int i = 0; i < 1000; ++i) {
    if (dir.Resolve("isp.net", rng)->target == "heavy") ++heavy;
  }
  EXPECT_GT(heavy, 800);
  EXPECT_LT(heavy, 980);
}

TEST(Directory, ZeroWeightsFallBackToUniform) {
  PortalDirectory dir;
  dir.AddRecord("isp.net", {"a", 1, 0, 0});
  dir.AddRecord("isp.net", {"b", 2, 0, 0});
  std::mt19937_64 rng(5);
  int a = 0;
  for (int i = 0; i < 400; ++i) {
    if (dir.Resolve("isp.net", rng)->target == "a") ++a;
  }
  EXPECT_GT(a, 100);
  EXPECT_LT(a, 300);
}

TEST(Directory, RecordsPreserveOrder) {
  PortalDirectory dir;
  dir.AddRecord("isp.net", {"one", 1, 0, 1});
  dir.AddRecord("isp.net", {"two", 2, 1, 1});
  const auto records = dir.Records("isp.net");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].target, "one");
  EXPECT_EQ(records[1].target, "two");
  EXPECT_TRUE(dir.Records("other").empty());
  EXPECT_EQ(dir.domain_count(), 1u);
}

TEST(Directory, ZeroWeightRecordStaysSelectableNextToWeighted) {
  // RFC 2782 regression: a weight-0 record in a class with weighted peers
  // must keep a small-but-nonzero selection probability, not be starved.
  PortalDirectory dir;
  dir.AddRecord("isp.net", {"zero", 1, 0, 0});
  dir.AddRecord("isp.net", {"heavy", 2, 0, 9});
  std::mt19937_64 rng(7);
  int zero = 0;
  for (int i = 0; i < 2000; ++i) {
    if (dir.Resolve("isp.net", rng)->target == "zero") ++zero;
  }
  EXPECT_GT(zero, 0);     // selectable...
  EXPECT_LT(zero, 1000);  // ...but a clear minority
}

TEST(Directory, ResolveOrderingIsAPermutationWithPrioritiesAscending) {
  PortalDirectory dir;
  dir.AddRecord("isp.net", {"p0-a", 1, 0, 3});
  dir.AddRecord("isp.net", {"p0-b", 2, 0, 0});
  dir.AddRecord("isp.net", {"p10-a", 3, 10, 1});
  dir.AddRecord("isp.net", {"p10-b", 4, 10, 1});
  dir.AddRecord("isp.net", {"p20", 5, 20, 1});
  std::mt19937_64 rng(8);
  for (int i = 0; i < 50; ++i) {
    const auto ordering = dir.ResolveOrdering("isp.net", rng);
    ASSERT_EQ(ordering.size(), 5u);
    std::multiset<std::string> targets;
    for (std::size_t j = 0; j < ordering.size(); ++j) {
      targets.insert(ordering[j].target);
      if (j > 0) {
        EXPECT_GE(ordering[j].priority, ordering[j - 1].priority);
      }
    }
    EXPECT_EQ(targets, (std::multiset<std::string>{"p0-a", "p0-b", "p10-a",
                                                   "p10-b", "p20"}));
    EXPECT_EQ(ordering.back().target, "p20");
  }
  EXPECT_TRUE(dir.ResolveOrdering("unknown.net", rng).empty());
}

TEST(Directory, ResolveOrderingIsDeterministicPerSeed) {
  PortalDirectory dir;
  for (int i = 0; i < 8; ++i) {
    dir.AddRecord("isp.net", {"r" + std::to_string(i), static_cast<std::uint16_t>(i + 1),
                              i % 2, i});
  }
  const auto run = [&dir](std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<std::string> flat;
    for (int i = 0; i < 5; ++i) {
      for (const auto& r : dir.ResolveOrdering("isp.net", rng)) {
        flat.push_back(r.target);
      }
    }
    return flat;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));  // astronomically unlikely to collide
}

TEST(Directory, ResolveOrderingWeightBiasesFirstSlot) {
  PortalDirectory dir;
  dir.AddRecord("isp.net", {"heavy", 1, 0, 9});
  dir.AddRecord("isp.net", {"light", 2, 0, 1});
  std::mt19937_64 rng(9);
  int heavy_first = 0;
  for (int i = 0; i < 1000; ++i) {
    if (dir.ResolveOrdering("isp.net", rng).front().target == "heavy") {
      ++heavy_first;
    }
  }
  EXPECT_GT(heavy_first, 800);
  EXPECT_LT(heavy_first, 980);
}

TEST(Directory, RemoveRecordDropsMatchesAndEmptyDomains) {
  PortalDirectory dir;
  dir.AddRecord("isp.net", {"a", 1, 0, 1});
  dir.AddRecord("isp.net", {"a", 2, 0, 1});  // same target, other port
  dir.AddRecord("isp.net", {"b", 3, 10, 1});
  EXPECT_EQ(dir.RemoveRecord("isp.net", "a", 1), 1u);
  EXPECT_EQ(dir.RemoveRecord("isp.net", "a", 1), 0u);  // already gone
  EXPECT_EQ(dir.RemoveRecord("nowhere.net", "a", 1), 0u);
  ASSERT_EQ(dir.Records("isp.net").size(), 2u);
  std::mt19937_64 rng(10);
  EXPECT_EQ(dir.Resolve("isp.net", rng)->port, 2);
  // Removing the last records erases the domain entirely.
  EXPECT_EQ(dir.RemoveRecord("isp.net", "a", 2), 1u);
  EXPECT_EQ(dir.RemoveRecord("isp.net", "b", 3), 1u);
  EXPECT_EQ(dir.domain_count(), 0u);
  EXPECT_FALSE(dir.Resolve("isp.net", rng).has_value());
}

TEST(Directory, DomainsAreIndependent) {
  PortalDirectory dir;
  dir.AddRecord("a.net", {"portal-a", 1, 0, 1});
  dir.AddRecord("b.net", {"portal-b", 2, 0, 1});
  std::mt19937_64 rng(6);
  EXPECT_EQ(dir.Resolve("a.net", rng)->target, "portal-a");
  EXPECT_EQ(dir.Resolve("b.net", rng)->target, "portal-b");
}

}  // namespace
}  // namespace p4p::proto

// Concurrent failover hammer: 8 threads share one ResilientPortalClient
// while a controller kills and revives replicas mid-run via scripted
// schedules. Asserts that no thread ever observes a torn view (every
// successful response is bit-identical to the reference encoding) and that
// the breaker state machine never deadlocks (the run completes).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/itracker.h"
#include "net/topology.h"
#include "proto/messages.h"
#include "proto/resilient_client.h"
#include "proto/service.h"
#include "support/fault_injection.h"

namespace p4p::proto {
namespace {

using testsupport::EndpointMode;
using testsupport::EndpointScript;
using testsupport::ScriptedTransport;
using testsupport::VirtualClock;

constexpr const char* kDomain = "isp.example";
constexpr int kThreads = 8;
constexpr int kCallsPerThread = 200;

class FailoverConcurrency : public ::testing::Test {
 protected:
  FailoverConcurrency()
      : graph_(net::MakeAbilene()), routing_(graph_), tracker_(graph_, routing_),
        service_(&tracker_) {
    dir_.AddRecord(kDomain, {"primary", 1, 0, 1});
    dir_.AddRecord(kDomain, {"secondary", 2, 10, 1});
    dir_.AddRecord(kDomain, {"tertiary", 3, 10, 1});
    request_ = Encode(GetExternalViewReq{});
    reference_ = service_.handler()(request_);
  }

  EndpointScript* ScriptFor(const std::string& target) {
    if (target == "primary") return &primary_;
    if (target == "secondary") return &secondary_;
    return &tertiary_;
  }

  net::Graph graph_;
  net::RoutingTable routing_;
  core::ITracker tracker_;
  ITrackerService service_;
  PortalDirectory dir_;
  VirtualClock clock_;
  EndpointScript primary_;
  EndpointScript secondary_;
  EndpointScript tertiary_;
  std::vector<std::uint8_t> request_;
  std::vector<std::uint8_t> reference_;
};

TEST_F(FailoverConcurrency, EightThreadHammerWithFlappingReplicasSeesNoTornView) {
  ResilientClientOptions options;
  options.failure_threshold = 2;
  options.open_cooldown_seconds = 0.01;
  options.max_attempts = 8;
  options.request_deadline_seconds = 1e9;  // budget-bounded, not time-bounded
  options.backoff_initial_seconds = 0.001;
  options.backoff_max_seconds = 0.005;
  ResilientPortalClient client(
      &dir_, kDomain,
      [this](const SrvRecord& r) -> std::unique_ptr<Transport> {
        return std::make_unique<ScriptedTransport>(service_.handler(),
                                                   ScriptFor(r.target), &clock_);
      },
      options, clock_.NowFn(), clock_.SleeperFn());

  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> successes{0};
  std::atomic<std::uint64_t> exhausted{0};
  std::atomic<std::uint64_t> unexpected{0};
  std::atomic<bool> stop_controller{false};

  // Replicas die and recover mid-run. The tertiary is never killed, so every
  // exhausted retry budget is a scheduling artifact, not a guaranteed state.
  // The primary starts dead so at least one failover is guaranteed even if
  // the controller thread is scheduled late.
  primary_.Set(EndpointMode::kDead);
  std::thread controller([&] {
    int round = 0;
    while (!stop_controller.load(std::memory_order_acquire)) {
      switch (round % 4) {
        case 0:
          primary_.Set(EndpointMode::kDead);
          break;
        case 1:
          secondary_.Set(EndpointMode::kUnavailable);
          break;
        case 2:
          primary_.Set(EndpointMode::kOk);
          break;
        case 3:
          secondary_.Set(EndpointMode::kOk);
          break;
      }
      ++round;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    primary_.Set(EndpointMode::kOk);
    secondary_.Set(EndpointMode::kOk);
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        try {
          const auto response = client.Call(request_);
          successes.fetch_add(1, std::memory_order_relaxed);
          if (response != reference_) torn.fetch_add(1, std::memory_order_relaxed);
        } catch (const PortalUnavailableError&) {
          exhausted.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception&) {
          unexpected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();  // completion proves no breaker deadlock
  stop_controller.store(true, std::memory_order_release);
  controller.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_GT(successes.load(), 0u);
  EXPECT_EQ(successes.load() + exhausted.load(),
            static_cast<std::uint64_t>(kThreads) * kCallsPerThread);
  // The flapping replicas actually failed under load and the client kept
  // account of it without corrupting its own bookkeeping.
  EXPECT_GE(client.attempt_count(), successes.load());
  EXPECT_GT(primary_.failure_count() + secondary_.failure_count(), 0u);
  // Breaker state is still a legal enum value for every endpoint.
  for (const auto& [target, port] :
       {std::pair<std::string, std::uint16_t>{"primary", 1},
        {"secondary", 2},
        {"tertiary", 3}}) {
    const auto state = client.endpoint_state(target, port);
    EXPECT_TRUE(state == CircuitState::kClosed || state == CircuitState::kOpen ||
                state == CircuitState::kHalfOpen);
  }
}

TEST_F(FailoverConcurrency, ConcurrentCallsDuringTotalOutageAllReturn) {
  primary_.Set(EndpointMode::kDead);
  secondary_.Set(EndpointMode::kDead);
  tertiary_.Set(EndpointMode::kDead);
  ResilientClientOptions options;
  options.failure_threshold = 1;
  options.open_cooldown_seconds = 0.5;
  options.max_attempts = 4;
  ResilientPortalClient client(
      &dir_, kDomain,
      [this](const SrvRecord& r) -> std::unique_ptr<Transport> {
        return std::make_unique<ScriptedTransport>(service_.handler(),
                                                   ScriptFor(r.target), &clock_);
      },
      options, clock_.NowFn(), clock_.SleeperFn());

  std::atomic<std::uint64_t> typed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        try {
          client.Call(request_);
        } catch (const PortalUnavailableError&) {
          typed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  // Every call failed, every failure was the typed retryable error, and the
  // all-open fast path kept the attempt count far below budget * calls.
  EXPECT_EQ(typed.load(), static_cast<std::uint64_t>(kThreads) * 50);
  EXPECT_LT(client.attempt_count(),
            static_cast<std::uint64_t>(kThreads) * 50 * options.max_attempts);
  EXPECT_GT(client.breaker_skip_count() + client.unavailable_count() +
                client.breaker_open_count(),
            0u);
}

}  // namespace
}  // namespace p4p::proto

// Term-fenced publisher failover suite (DESIGN.md §13).
//
// Proves the failover plane's guarantees at three granularities:
//   * coordinator unit tests — lease expiry promotes in SRV rank order,
//     promotion floors the version token at term * kTermVersionStride and
//     re-stamps the caches, a fenced ex-publisher can never overwrite and
//     demotes itself, UDP validation tokens stay coherent across the swap;
//   * wire/codec tests — the term field rides every frame totally (any
//     single-bit flip or truncation decodes to nullopt, never a wrong
//     value), unknown AckStatus bytes are rejected outright;
//   * chaos conformance — crash/restart/partition schedules over lossy
//     channels across a seed sweep (see support/replication_harness.h),
//     plus an 8-thread promote-vs-serve-vs-tick hammer (TSan target).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/itracker.h"
#include "net/topology.h"
#include "proto/failover.h"
#include "proto/federation.h"
#include "proto/messages.h"
#include "proto/resilient_client.h"
#include "proto/telemetry.h"
#include "support/replication_harness.h"

namespace p4p::proto {
namespace {

using testsupport::FailoverScenarioConfig;
using testsupport::FailoverScenarioResult;
using testsupport::RunFailoverScenario;

constexpr const char* kDomain = "isp.example";

// --- a three-replica cluster over direct in-process channels ----------------

struct Node {
  std::string target;
  std::uint16_t port;
  net::Graph graph;
  net::RoutingTable routing;
  core::ITracker tracker;
  ITrackerService service;
  ReplicatedSnapshotStore store;
  FollowerPortalService serve;
  SnapshotFollower follower;
  std::unique_ptr<FailoverCoordinator> coordinator;

  Node(std::string target_in, std::uint16_t port_in)
      : target(std::move(target_in)), port(port_in), graph(net::MakeAbilene()),
        routing(graph), tracker(graph, routing), service(&tracker),
        serve(&store), follower(&store) {}

  /// One tracker mutation (version bump) — the version listener republishes.
  void Reprice(double scale) {
    std::vector<double> prices(graph.link_count(), 0.0);
    prices[0] = 1e-9 * scale;
    tracker.SetStaticPrices(prices);
  }
};

class FailoverCoordinatorTest : public ::testing::Test {
 protected:
  static constexpr int kNodes = 3;

  FailoverCoordinatorTest() {
    for (int i = 0; i < kNodes; ++i) {
      nodes_.push_back(std::make_unique<Node>(
          "replica" + std::to_string(i) + ".example",
          static_cast<std::uint16_t>(9000 + i)));
      alive_[i] = true;
      directory_.AddRecord(
          kDomain, SrvRecord{nodes_.back()->target, nodes_.back()->port, i, 1});
    }
    for (int i = 0; i < kNodes; ++i) Wire(i);
  }

  void Wire(int idx) {
    FailoverOptions options;
    options.domain = kDomain;
    options.self_target = nodes_[static_cast<std::size_t>(idx)]->target;
    options.self_port = nodes_[static_cast<std::size_t>(idx)]->port;
    options.lease_seconds = 3.0;
    options.stagger_seconds = 1.0;
    auto& node = *nodes_[static_cast<std::size_t>(idx)];
    node.coordinator = std::make_unique<FailoverCoordinator>(
        &node.tracker, &node.service, &node.store, &node.follower, &directory_,
        [this](const std::string& target,
               std::uint16_t port) -> std::unique_ptr<Transport> {
          const int dst = Find(target, port);
          if (dst < 0) return nullptr;
          return std::make_unique<InProcessTransport>(
              [this, dst](std::span<const std::uint8_t> request) {
                if (!alive_[dst]) throw std::runtime_error("replica dead");
                return nodes_[static_cast<std::size_t>(dst)]
                    ->coordinator->HandleReplication(request);
              });
        },
        options, [this] { return now_.load(std::memory_order_relaxed); });
  }

  int Find(const std::string& target, std::uint16_t port) const {
    for (int i = 0; i < kNodes; ++i) {
      if (nodes_[static_cast<std::size_t>(i)]->target == target &&
          nodes_[static_cast<std::size_t>(i)]->port == port) {
        return i;
      }
    }
    return -1;
  }

  /// Delivers every live publisher's beacon to every other live follower.
  void DeliverBeacons() {
    for (int i = 0; i < kNodes; ++i) {
      if (!alive_[i]) continue;
      const auto beacon =
          nodes_[static_cast<std::size_t>(i)]->coordinator->BeaconFrame();
      if (!beacon) continue;
      for (int j = 0; j < kNodes; ++j) {
        if (j == i || !alive_[j]) continue;
        nodes_[static_cast<std::size_t>(j)]->follower.HandleBeacon(*beacon);
      }
    }
  }

  void TickAll() {
    for (int i = 0; i < kNodes; ++i) {
      if (alive_[i]) nodes_[static_cast<std::size_t>(i)]->coordinator->Tick();
    }
  }

  /// Advances to lease expiry for rank 0 only and promotes node 0.
  void PromoteFirst() {
    now_ = 3.5;  // past rank 0's 3.0s lease, short of rank 1's 4.0s slot
    TickAll();
    ASSERT_EQ(nodes_[0]->coordinator->role(),
              FailoverCoordinator::Role::kPublisher);
    DeliverBeacons();
  }

  /// Kills node 0 and lets node 1 self-promote after its staggered slot.
  void KillFirstPromoteSecond() {
    nodes_[0]->Reprice(2.0);  // publish a term-1 version first
    DeliverBeacons();         // leases renewed at now_
    alive_[0] = false;
    now_ += 4.5;  // rank 1 waits lease + 1 * stagger = 4.0s of silence
    TickAll();
    ASSERT_EQ(nodes_[1]->coordinator->role(),
              FailoverCoordinator::Role::kPublisher);
    ASSERT_EQ(nodes_[1]->coordinator->term(), 2u);
    DeliverBeacons();
  }

  PortalDirectory directory_;
  // Atomic so the hammer's single clock-writer thread can race readers
  // (the coordinator clock callbacks) without UB; single-threaded tests
  // just use it as a double.
  std::atomic<double> now_{0.0};
  bool alive_[kNodes] = {};
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(FailoverCoordinatorTest, RankZeroPromotesAfterLeaseAndRepublishes) {
  // Before any lease expires nobody promotes and nobody beacons.
  now_ = 2.0;
  TickAll();
  for (const auto& node : nodes_) {
    EXPECT_EQ(node->coordinator->role(), FailoverCoordinator::Role::kFollower);
    EXPECT_FALSE(node->coordinator->BeaconFrame().has_value());
  }

  PromoteFirst();
  EXPECT_EQ(nodes_[0]->coordinator->term(), 1u);
  EXPECT_EQ(nodes_[0]->coordinator->promote_count(), 1u);
  ASSERT_NE(nodes_[0]->coordinator->publisher(), nullptr);
  // Version fencing: term 1 mints tokens at or above 1 * stride.
  EXPECT_GE(nodes_[0]->tracker.version(), kTermVersionStride);
  // The promotion's initial republish reached both followers.
  for (int i = 1; i < kNodes; ++i) {
    EXPECT_EQ(nodes_[static_cast<std::size_t>(i)]->store.term(), 1u);
    EXPECT_EQ(nodes_[static_cast<std::size_t>(i)]->store.version(),
              nodes_[0]->tracker.version());
    EXPECT_EQ(nodes_[static_cast<std::size_t>(i)]->coordinator->role(),
              FailoverCoordinator::Role::kFollower);
  }

  // The rebound version listener republishes every later reprice.
  nodes_[0]->Reprice(1.0);
  EXPECT_EQ(nodes_[1]->store.version(), nodes_[0]->tracker.version());
  EXPECT_EQ(nodes_[2]->store.version(), nodes_[0]->tracker.version());

  // Beacons renew the followers' leases: nobody else promotes.
  DeliverBeacons();
  now_ += 10.0;
  DeliverBeacons();
  TickAll();
  EXPECT_EQ(nodes_[1]->coordinator->role(), FailoverCoordinator::Role::kFollower);
  EXPECT_EQ(nodes_[2]->coordinator->role(), FailoverCoordinator::Role::kFollower);
}

TEST_F(FailoverCoordinatorTest, NextCandidatePromotesWithHigherTermAndNoRegression) {
  PromoteFirst();
  const std::uint64_t term1_version = nodes_[1]->store.version();
  ASSERT_GE(term1_version, kTermVersionStride);

  KillFirstPromoteSecond();
  // Term 2 tokens live in the next stride: strictly above every term-1 token.
  EXPECT_GE(nodes_[1]->tracker.version(), 2 * kTermVersionStride);
  EXPECT_GT(nodes_[1]->tracker.version(), term1_version);
  // The promotion republished to the remaining follower under term 2, and
  // its install went forward in the lexicographic order.
  EXPECT_EQ(nodes_[2]->store.term(), 2u);
  EXPECT_GT(nodes_[2]->store.version(), term1_version);
  // Rank 2 stays a follower: its slot (lease + 2 * stagger) never expired.
  EXPECT_EQ(nodes_[2]->coordinator->role(), FailoverCoordinator::Role::kFollower);
  // Promotion re-stamped the service caches above the new floor.
  EXPECT_GE(nodes_[1]->service.ExportFrames().view_version,
            2 * kTermVersionStride);
}

TEST_F(FailoverCoordinatorTest, FencedExPublisherCannotOverwriteAndDemotes) {
  PromoteFirst();
  KillFirstPromoteSecond();

  // The old publisher comes back believing it still owns term 1.
  alive_[0] = true;
  ASSERT_EQ(nodes_[0]->coordinator->role(), FailoverCoordinator::Role::kPublisher);
  const std::uint64_t held_term = nodes_[2]->store.term();
  const std::uint64_t held_version = nodes_[2]->store.version();

  // Its republish is fenced everywhere: nothing installed anywhere.
  nodes_[0]->Reprice(3.0);
  EXPECT_EQ(nodes_[2]->store.term(), held_term);
  EXPECT_EQ(nodes_[2]->store.version(), held_version);
  EXPECT_GE(nodes_[1]->follower.stale_term_reject_count() +
                nodes_[2]->follower.stale_term_reject_count(),
            1u);
  auto* old_publisher = nodes_[0]->coordinator->publisher();
  ASSERT_NE(old_publisher, nullptr);
  EXPECT_TRUE(old_publisher->fenced());
  EXPECT_EQ(old_publisher->observed_fence_term(), 2u);

  // The kStaleTerm ack demotes it on its next tick, and the demotion resets
  // its lease so it does not instantly re-promote.
  EXPECT_EQ(nodes_[0]->coordinator->Tick(), FailoverCoordinator::Role::kFollower);
  EXPECT_EQ(nodes_[0]->coordinator->demote_count(), 1u);
  EXPECT_EQ(nodes_[0]->coordinator->publisher(), nullptr);
  EXPECT_FALSE(nodes_[0]->coordinator->BeaconFrame().has_value());

  // As a follower it catches up to term 2 through beacon + pull.
  DeliverBeacons();
  ASSERT_TRUE(nodes_[0]->follower.behind());
  InProcessTransport to_leader([this](std::span<const std::uint8_t> request) {
    return nodes_[1]->coordinator->HandleReplication(request);
  });
  EXPECT_TRUE(nodes_[0]->follower.PullOnce(to_leader));
  EXPECT_EQ(nodes_[0]->store.term(), 2u);
  EXPECT_EQ(nodes_[0]->store.version(), nodes_[1]->tracker.version());
}

TEST_F(FailoverCoordinatorTest, ValidationTokensStayCoherentAcrossPromotion) {
  PromoteFirst();
  // A client validates against the term-1 publisher and caches its token.
  const std::uint64_t old_token = nodes_[0]->service.price_version();
  ASSERT_GE(old_token, kTermVersionStride);
  {
    const auto answer = nodes_[0]->service.HandleValidationDatagram(
        EncodeValidationRequest(ValidationRequest{77, old_token}));
    ASSERT_TRUE(answer.has_value());
    const auto decoded = DecodeValidationResponse(*answer);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->status, ValidationStatus::kNotModified);
  }

  KillFirstPromoteSecond();

  // The promoted publisher must never confirm an old-term token — the
  // stride keeps the spaces disjoint, so the answer is a TCP redirect
  // carrying the new current version, nonce echoed.
  const auto answer = nodes_[1]->service.HandleValidationDatagram(
      EncodeValidationRequest(ValidationRequest{91, old_token}));
  ASSERT_TRUE(answer.has_value());
  const auto redirect = DecodeValidationResponse(*answer);
  ASSERT_TRUE(redirect.has_value());
  EXPECT_EQ(redirect->nonce, 91u);
  EXPECT_EQ(redirect->status, ValidationStatus::kRevalidateOverTcp);
  EXPECT_GE(redirect->version, 2 * kTermVersionStride);
  EXPECT_GT(redirect->version, old_token);

  // The new version token validates — on the publisher and on a follower
  // serving the replicated frames (portal-wide tokens survive failover).
  for (const auto& datagram :
       {nodes_[1]->service.HandleValidationDatagram(
            EncodeValidationRequest(ValidationRequest{92, redirect->version})),
        nodes_[2]->serve.HandleValidationDatagram(
            EncodeValidationRequest(ValidationRequest{93, redirect->version}))}) {
    ASSERT_TRUE(datagram.has_value());
    const auto current = DecodeValidationResponse(*datagram);
    ASSERT_TRUE(current.has_value());
    EXPECT_EQ(current->status, ValidationStatus::kNotModified);
    EXPECT_EQ(current->version, redirect->version);
  }
  // And the follower rejects the old-term token too.
  const auto stale = nodes_[2]->serve.HandleValidationDatagram(
      EncodeValidationRequest(ValidationRequest{94, old_token}));
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(DecodeValidationResponse(*stale)->status,
            ValidationStatus::kRevalidateOverTcp);
}

// --- jittered-backoff pull retry --------------------------------------------

class DeadTransport final : public Transport {
 public:
  std::vector<std::uint8_t> Call(std::span<const std::uint8_t>) override {
    ++calls_;
    throw std::runtime_error("connection refused");
  }
  std::uint64_t calls() const { return calls_; }

 private:
  std::uint64_t calls_ = 0;
};

TEST(PullBackoffTest, BacksOffExponentiallyExhaustsAndRearmsOnNewTerm) {
  ReplicatedSnapshotStore store;
  SnapshotFollower follower(&store);
  PullRetryOptions retry;
  retry.initial_backoff_seconds = 1.0;
  retry.backoff_factor = 2.0;
  retry.max_backoff_seconds = 100.0;
  retry.jitter = 0.0;  // exact delays, so the schedule is assertable
  retry.max_attempts = 3;
  follower.ConfigurePullRetry(retry, /*seed=*/7);
  DeadTransport dead;

  // Attempt 1 fires immediately and fails -> next due at t=1.
  EXPECT_FALSE(follower.TryPull(dead, 0.0));
  EXPECT_EQ(dead.calls(), 1u);
  // Backoff window: no wire traffic.
  EXPECT_FALSE(follower.PullDue(0.5));
  EXPECT_FALSE(follower.TryPull(dead, 0.5));
  EXPECT_EQ(dead.calls(), 1u);
  EXPECT_EQ(follower.pull_backoff_skip_count(), 1u);
  // Attempt 2 at t=1 -> next due at t=3; attempt 3 exhausts the cap.
  EXPECT_FALSE(follower.TryPull(dead, 1.0));
  EXPECT_EQ(dead.calls(), 2u);
  EXPECT_FALSE(follower.TryPull(dead, 2.9));
  EXPECT_EQ(dead.calls(), 2u);
  EXPECT_FALSE(follower.TryPull(dead, 3.0));
  EXPECT_EQ(dead.calls(), 3u);
  EXPECT_EQ(follower.pull_retry_exhausted_count(), 1u);
  // Disarmed: even the far future does not probe the dead endpoint.
  EXPECT_FALSE(follower.PullDue(1e6));
  EXPECT_FALSE(follower.TryPull(dead, 1e6));
  EXPECT_EQ(dead.calls(), 3u);

  // Evidence of a new publisher (a higher-term beacon) re-arms the loop.
  follower.HandleBeacon(EncodeBeacon(/*term=*/1, /*version=*/10));
  EXPECT_TRUE(follower.PullDue(1e6));
  EXPECT_FALSE(follower.TryPull(dead, 1e6));
  EXPECT_EQ(dead.calls(), 4u);
}

TEST(PullBackoffTest, SuccessfulInstallResetsTheSchedule) {
  net::Graph graph = net::MakeAbilene();
  net::RoutingTable routing(graph);
  core::ITracker tracker(graph, routing);
  ITrackerService service(&tracker);
  SnapshotPublisher publisher(&service);
  ReplicatedSnapshotStore store;
  SnapshotFollower follower(&store);
  PullRetryOptions retry;
  retry.initial_backoff_seconds = 1.0;
  retry.jitter = 0.0;
  retry.max_attempts = 2;
  follower.ConfigurePullRetry(retry, /*seed=*/7);

  DeadTransport dead;
  EXPECT_FALSE(follower.TryPull(dead, 0.0));  // one failure on the books
  // An advancing pull clears the failure count and the pending delay.
  InProcessTransport good(publisher.replication_handler());
  EXPECT_TRUE(follower.TryPull(good, 1.0));
  EXPECT_EQ(store.version(), tracker.version());
  EXPECT_TRUE(follower.PullDue(1.0));
  // The cap counts consecutive failures only: two more are available.
  EXPECT_FALSE(follower.TryPull(dead, 1.0));
  EXPECT_FALSE(follower.TryPull(dead, 2.0));
  EXPECT_EQ(follower.pull_retry_exhausted_count(), 1u);
}

// --- codec: the term field rides every frame totally ------------------------

std::vector<std::vector<std::uint8_t>> TermCarryingFrames() {
  SnapshotFrameSet frames;
  frames.term = 3;
  frames.version = 9;
  frames.view_version = 9;
  frames.num_pids = 2;
  frames.not_modified = {1, 2, 3};
  frames.external_view = {4, 5, 6, 7};
  frames.rows = {{8, 9}, {10, 11, 12}};
  frames.row_versions = {9, 7};

  DeltaPush delta;
  delta.term = 3;
  delta.base_version = 8;
  delta.version = 9;
  delta.view_version = 9;
  delta.num_pids = 2;
  delta.not_modified = {1, 2, 3};
  delta.rows.push_back(DeltaRow{1, 9, {10, 11, 12}});
  delta.result_checksum = FrameSetChecksum(frames);

  return {
      EncodeBeacon(/*term=*/3, /*version=*/9),
      EncodeFrameAck(FrameAck{AckStatus::kStaleTerm, 9, 3}),
      EncodeFramePull(FramePull{8, /*have_term=*/3, false}),
      EncodeFramePush(frames),
      EncodeDeltaPush(delta),
  };
}

bool DecodesToAnything(std::span<const std::uint8_t> bytes) {
  return DecodeBeacon(bytes).has_value() || DecodeFrameAck(bytes).has_value() ||
         DecodeFramePull(bytes).has_value() ||
         DecodeFramePush(bytes).has_value() ||
         DecodeDeltaPush(bytes).has_value();
}

TEST(FailoverCodecTest, EveryBitFlipAndTruncationIsRejectedNotMisread) {
  for (const auto& frame : TermCarryingFrames()) {
    ASSERT_TRUE(DecodesToAnything(frame));  // the pristine frame is valid
    // Any single-bit flip — term bytes included — breaks the checksum: the
    // frame must decode to nothing, never to a different term or version.
    for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
      auto flipped = frame;
      flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      EXPECT_FALSE(DecodesToAnything(flipped)) << "bit " << bit;
    }
    // Every truncation and any trailing garbage are equally total.
    for (std::size_t len = 0; len < frame.size(); ++len) {
      EXPECT_FALSE(
          DecodesToAnything(std::span(frame.data(), len)));
    }
    auto extended = frame;
    extended.push_back(0);
    EXPECT_FALSE(DecodesToAnything(extended));
  }
}

/// Rewrites the trailing FNV-1a so a deliberately patched frame is
/// well-formed at the checksum layer — payload validation must reject it.
void Reseal(std::vector<std::uint8_t>& bytes) {
  const std::uint32_t sum =
      FrameChecksum(std::span(bytes.data(), bytes.size() - 4));
  const std::size_t at = bytes.size() - 4;
  bytes[at] = static_cast<std::uint8_t>(sum >> 24);
  bytes[at + 1] = static_cast<std::uint8_t>(sum >> 16);
  bytes[at + 2] = static_cast<std::uint8_t>(sum >> 8);
  bytes[at + 3] = static_cast<std::uint8_t>(sum);
}

TEST(FailoverCodecTest, UnknownAckStatusIsRejectedEvenWithValidChecksum) {
  const auto pristine = EncodeFrameAck(FrameAck{AckStatus::kStaleTerm, 9, 3});
  // Header is magic(4) + proto version(1) + tag(1); status is the first
  // payload byte.
  constexpr std::size_t kStatusOffset = 6;
  ASSERT_EQ(pristine[kStatusOffset],
            static_cast<std::uint8_t>(AckStatus::kStaleTerm));
  for (const std::uint8_t status : {0, 6, 7, 42, 255}) {
    auto patched = pristine;
    patched[kStatusOffset] = status;
    Reseal(patched);
    EXPECT_FALSE(DecodeFrameAck(patched).has_value())
        << "status " << static_cast<int>(status);
  }
  // Sanity: the same patch path yields every defined status, so the
  // rejections above are the range check, not a resealing artifact.
  for (const std::uint8_t status : {1, 2, 3, 4, 5}) {
    auto patched = pristine;
    patched[kStatusOffset] = status;
    Reseal(patched);
    const auto decoded = DecodeFrameAck(patched);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->status, static_cast<AckStatus>(status));
    EXPECT_EQ(decoded->term, 3u);
  }
}

// --- telemetry reporter failover ---------------------------------------------

/// Transport whose failure mode is switchable mid-test: dead (throws), or
/// delivered-but-ack-lost (backend runs, then the response "drops").
class FlakyTransport final : public Transport {
 public:
  enum class Mode { kOk, kDead, kAckLost };
  explicit FlakyTransport(Handler backend) : backend_(std::move(backend)) {}
  void set_mode(Mode mode) { mode_ = mode; }

  std::vector<std::uint8_t> Call(std::span<const std::uint8_t> request) override {
    if (mode_ == Mode::kDead) throw std::runtime_error("connection refused");
    auto response = backend_(request);
    if (mode_ == Mode::kAckLost) throw std::runtime_error("response lost");
    return response;
  }

 private:
  Handler backend_;
  Mode mode_ = Mode::kOk;
};

TEST(ReporterFailoverTest, RebindsToTheNewCollectorAfterConsecutiveFailures) {
  LinkLoadCollector old_collector(4);
  LinkLoadCollector new_collector(4);
  FlakyTransport to_old(old_collector.handler());
  InProcessTransport to_new(new_collector.handler());

  Transport* current = &to_old;
  LinkLoadReporter reporter(
      /*reporter_id=*/7, [&current]() -> Transport* { return current; },
      /*rebind_after_failures=*/3);
  reporter.Record(0, 100.0);
  ASSERT_TRUE(reporter.Flush());
  ASSERT_EQ(old_collector.accepted_count(), 1u);

  // The publisher (and its collector) dies; the directory now points at
  // the promoted replica's collector.
  to_old.set_mode(FlakyTransport::Mode::kDead);
  current = &to_new;
  reporter.Record(1, 50.0);
  EXPECT_FALSE(reporter.Flush());
  EXPECT_FALSE(reporter.Flush());
  EXPECT_EQ(reporter.rebind_count(), 0u);  // still probing the old endpoint
  EXPECT_FALSE(reporter.Flush());          // third strike: re-resolve
  EXPECT_EQ(reporter.rebind_count(), 1u);
  // The retained batch lands on the new collector, nothing lost.
  EXPECT_TRUE(reporter.Flush());
  EXPECT_EQ(new_collector.accepted_count(), 1u);
  EXPECT_EQ(new_collector.sample_count(), 1u);
  EXPECT_EQ(reporter.pending(), 0u);
}

TEST(ReporterFailoverTest, LostAckResynchronizesWithoutDoubleCounting) {
  LinkLoadCollector collector(4);
  FlakyTransport channel(collector.handler());
  LinkLoadReporter reporter(/*reporter_id=*/9, &channel);

  // The report gets through but its ack drops: the reporter keeps the
  // batch, the collector has already counted it.
  channel.set_mode(FlakyTransport::Mode::kAckLost);
  reporter.Record(2, 10.0);
  EXPECT_FALSE(reporter.Flush());
  ASSERT_EQ(collector.accepted_count(), 1u);
  ASSERT_EQ(collector.sample_count(), 1u);

  // The retry hits the sequence gate: kStaleSeq resynchronizes the
  // reporter (batch dropped, seq advanced) and nothing is double-counted.
  channel.set_mode(FlakyTransport::Mode::kOk);
  EXPECT_TRUE(reporter.Flush());
  EXPECT_EQ(collector.accepted_count(), 1u);
  EXPECT_EQ(collector.sample_count(), 1u);
  EXPECT_EQ(collector.stale_count(), 1u);
  EXPECT_EQ(reporter.pending(), 0u);

  // Sequencing continues cleanly past the resync.
  reporter.Record(3, 20.0);
  EXPECT_TRUE(reporter.Flush());
  EXPECT_EQ(collector.accepted_count(), 2u);
  EXPECT_EQ(collector.sample_count(), 2u);
}

// --- directory term epochs + failover-aware client steering -----------------

TEST(DirectoryTermEpochTest, ReplicaEpochsAreMonotoneInTheTermVersionPair) {
  PortalDirectory directory;
  directory.AddRecord(kDomain, SrvRecord{"a.example", 1, 0, 1});
  EXPECT_EQ(directory.UpdateReplicaEpoch(kDomain, "a.example", 1, 2, 10), 1u);
  // A fenced ex-publisher's stale-term update is ignored, whatever its
  // version claims.
  EXPECT_EQ(directory.UpdateReplicaEpoch(kDomain, "a.example", 1, 1, 999), 0u);
  EXPECT_EQ(directory.term_epoch(kDomain, "a.example", 1), 2u);
  EXPECT_EQ(directory.version_epoch(kDomain, "a.example", 1), 10u);
  // Same term: version must advance.
  EXPECT_EQ(directory.UpdateReplicaEpoch(kDomain, "a.example", 1, 2, 9), 0u);
  EXPECT_EQ(directory.UpdateReplicaEpoch(kDomain, "a.example", 1, 2, 11), 1u);
  // A new term supersedes even a numerically larger old-term version.
  EXPECT_EQ(directory.UpdateReplicaEpoch(kDomain, "a.example", 1, 3, 1), 1u);
  EXPECT_EQ(directory.max_replica_epoch(kDomain),
            (std::pair<std::uint64_t, std::uint64_t>{3, 1}));
  // The term-agnostic legacy path still works within the recorded term.
  EXPECT_EQ(directory.UpdateVersionEpoch(kDomain, "a.example", 1, 500), 0u);
  EXPECT_EQ(directory.term_epoch(kDomain, "a.example", 1), 3u);
}

TEST(DirectoryTermEpochTest, PreferFreshSteersByPairNotRawVersion) {
  net::Graph graph = net::MakeAbilene();
  net::RoutingTable routing(graph);
  core::ITracker tracker(graph, routing);
  ITrackerService service(&tracker);

  PortalDirectory directory;
  // The SRV-preferred replica was last confirmed by the fenced term-1
  // publisher at a huge raw version; the backup was confirmed by the
  // term-2 publisher at a tiny one. Freshness is the pair.
  directory.AddRecord(kDomain, SrvRecord{"stale.example", 1, 0, 1});
  directory.AddRecord(kDomain, SrvRecord{"fresh.example", 2, 10, 1});
  directory.UpdateReplicaEpoch(kDomain, "stale.example", 1, 1, 5000);
  directory.UpdateReplicaEpoch(kDomain, "fresh.example", 2, 2, 3);

  std::vector<std::string> attempts;
  ResilientClientOptions options;
  options.prefer_fresh_replicas = true;
  ResilientPortalClient client(
      &directory, kDomain,
      [&](const SrvRecord& record) -> std::unique_ptr<Transport> {
        attempts.push_back(record.target);
        return std::make_unique<InProcessTransport>(service.handler());
      },
      options);
  client.Call(Encode(GetExternalViewReq{}));
  ASSERT_FALSE(attempts.empty());
  EXPECT_EQ(attempts.front(), "fresh.example");
  EXPECT_GE(client.laggard_demotion_count(), 1u);
}

// --- chaos conformance: crash / restart / partition schedules ---------------

void ExpectClean(const FailoverScenarioResult& result, const std::string& tag) {
  for (const auto& violation : result.violations) {
    ADD_FAILURE() << tag << ": " << violation;
  }
}

TEST(FailoverConformanceTest, PublisherCrashPromotesWithinLeaseBudget) {
  FailoverScenarioConfig config;
  config.seed = 11;
  config.rounds = 24;
  config.kill_publisher_round = 8;
  const auto result = RunFailoverScenario(config);
  ExpectClean(result, "crash");
  // Replica 0 promoted at the start, replica 1 after the crash.
  EXPECT_GE(result.promotions, 2u);
  EXPECT_GE(result.final_term, 2u);
  EXPECT_GE(result.final_version, 2 * kTermVersionStride);
  // Lease 3s + rank-1 stagger 1s at 1s/round: the successor must appear
  // within the lease budget (some slack for the round grid).
  ASSERT_GE(result.promote_latency_rounds, 1);
  EXPECT_LE(result.promote_latency_rounds, 7);
}

TEST(FailoverConformanceTest, SplitBrainHealIsFencedNotMerged) {
  FailoverScenarioConfig config;
  config.seed = 21;
  config.rounds = 28;
  config.partition_round = 8;
  config.heal_round = 16;
  const auto result = RunFailoverScenario(config);
  ExpectClean(result, "split-brain");
  // Both sides published during the partition; after healing the fence
  // rejected the old term's pushes and the ex-publisher stepped down.
  EXPECT_GE(result.promotions, 2u);
  EXPECT_GE(result.fenced_rejects, 1u);
  EXPECT_GE(result.demotions, 1u);
  EXPECT_GE(result.final_term, 2u);
}

TEST(FailoverConformanceTest, ColdRestartRepullsAndConverges) {
  FailoverScenarioConfig config;
  config.seed = 31;
  config.rounds = 26;
  config.kill_publisher_round = 8;
  config.revive_publisher_round = 14;
  const auto result = RunFailoverScenario(config);
  ExpectClean(result, "cold-restart");
  EXPECT_GE(result.promotions, 2u);
  EXPECT_GE(result.final_term, 2u);
}

TEST(FailoverConformanceTest, FiveReplicaDoubleFailurePromotesRankTwo) {
  // Kill the first publisher, partition the second: rank 2 must end up
  // holding the cluster, three terms deep.
  FailoverScenarioConfig config;
  config.seed = 41;
  config.rounds = 36;
  config.replicas = 5;
  config.kill_publisher_round = 6;
  config.partition_round = 16;
  config.heal_round = 24;
  const auto result = RunFailoverScenario(config);
  ExpectClean(result, "double-failure");
  EXPECT_GE(result.promotions, 3u);
  EXPECT_GE(result.final_term, 3u);
}

TEST(FailoverConformanceTest, ChaosSweepHoldsInvariantsAcrossSeeds) {
  std::uint64_t total_fenced = 0;
  std::uint64_t total_backoff_skips = 0;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    for (const double drop : {0.1, 0.4}) {
      FailoverScenarioConfig config;
      config.seed = seed;
      config.rounds = 24;
      config.drop_rate = drop;
      config.corrupt_rate = drop / 2;
      // Alternate fault schedules by seed parity: even seeds exercise
      // crash + cold restart, odd seeds exercise split-brain + heal.
      if (seed % 2 == 0) {
        config.kill_publisher_round = 6 + static_cast<int>(seed % 3);
        config.revive_publisher_round = config.kill_publisher_round + 4;
      } else {
        config.partition_round = 12;
        config.heal_round = 16;
      }
      const auto result = RunFailoverScenario(config);
      ExpectClean(result, "seed " + std::to_string(seed) + " drop " +
                              std::to_string(drop));
      total_fenced += result.fenced_rejects;
      total_backoff_skips += result.pull_backoff_skips;
    }
  }
  // The sweep as a whole must actually exercise the fence and the backoff
  // schedule — otherwise the invariants above were proved vacuously.
  EXPECT_GT(total_fenced, 0u);
  EXPECT_GT(total_backoff_skips, 0u);
}

TEST(FailoverConformanceTest, SameSeedReplayIsBitIdentical) {
  FailoverScenarioConfig config;
  config.seed = 42;
  config.rounds = 24;
  config.drop_rate = 0.3;
  config.corrupt_rate = 0.1;
  config.kill_publisher_round = 7;
  config.revive_publisher_round = 12;
  const auto first = RunFailoverScenario(config);
  const auto second = RunFailoverScenario(config);
  ExpectClean(first, "replay A");
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.final_term, second.final_term);
  EXPECT_EQ(first.final_version, second.final_version);
  EXPECT_EQ(first.fenced_rejects, second.fenced_rejects);

  config.seed = 43;
  const auto other = RunFailoverScenario(config);
  EXPECT_NE(first.digest, other.digest);
}

TEST(FailoverConformanceTest, RejectsOutOfRangeConfigs) {
  FailoverScenarioConfig config;
  config.replicas = 1;
  EXPECT_THROW(RunFailoverScenario(config), std::invalid_argument);
  config.replicas = 9;
  EXPECT_THROW(RunFailoverScenario(config), std::invalid_argument);
  config.replicas = 3;
  config.drop_rate = 1.5;
  EXPECT_THROW(RunFailoverScenario(config), std::invalid_argument);
}

// --- promote-vs-serve-vs-tick hammer (TSan target) ---------------------------

TEST_F(FailoverCoordinatorTest, EightThreadPromoteServeTickHammer) {
  // No beacons are delivered while the hammer runs, so leases keep
  // expiring and promotion churn races serving, pulls, and repricing.
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;

  // 2 tickers: thread 0 is the only clock writer; both tick every
  // coordinator.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([this, t, &done] {
      while (!done.load(std::memory_order_relaxed)) {
        if (t == 0) now_ += 0.1;
        for (auto& node : nodes_) node->coordinator->Tick();
      }
    });
  }
  // 2 servers: validate against follower stores; the (term, version) pair
  // must be monotone per observer, derived from ONE store snapshot.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([this, t, &done] {
      auto& node = *nodes_[static_cast<std::size_t>(1 + t)];
      std::pair<std::uint64_t, std::uint64_t> seen{0, 0};
      std::uint64_t nonce = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const auto held = node.store.current();
        if (held) {
          const std::pair<std::uint64_t, std::uint64_t> pair{held->term,
                                                             held->version};
          ASSERT_GE(pair, seen);
          seen = pair;
        }
        const auto answer = node.serve.HandleValidationDatagram(
            EncodeValidationRequest(ValidationRequest{++nonce, seen.second}));
        // An empty store sheds UDP validation (no answer); once frames
        // are held the answer must always decode.
        if (answer) {
          ASSERT_TRUE(DecodeValidationResponse(*answer).has_value());
        }
      }
    });
  }
  // 1 beacon prodder: replays whatever beacons exist into follower 2.
  threads.emplace_back([this, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      for (auto& node : nodes_) {
        const auto beacon = node->coordinator->BeaconFrame();
        if (beacon) nodes_[2]->follower.HandleBeacon(*beacon);
      }
    }
  });
  // 1 puller: anti-entropy pulls toward node 0's coordinator.
  threads.emplace_back([this, &done] {
    InProcessTransport to_zero([this](std::span<const std::uint8_t> request) {
      return nodes_[0]->coordinator->HandleReplication(request);
    });
    while (!done.load(std::memory_order_relaxed)) {
      nodes_[2]->follower.TryPull(to_zero,
                                  now_.load(std::memory_order_relaxed));
    }
  });
  // 2 drivers: reprice rotating trackers — races publisher republish
  // against promotion's AdvanceVersionTo/ResetEncodedState.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([this, t, &done] {
      std::uint64_t i = 0;
      while (!done.load(std::memory_order_relaxed)) {
        nodes_[(t + i) % kNodes]->Reprice(1.0 + static_cast<double>(i % 7));
        ++i;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  done.store(true, std::memory_order_relaxed);
  for (auto& thread : threads) thread.join();

  // Settle single-threaded: deliver beacons + tick until one publisher
  // survives, then check the cluster is in a legal state.
  for (int i = 0; i < 64; ++i) {
    DeliverBeacons();
    TickAll();
    int publishers = 0;
    for (const auto& node : nodes_) {
      if (node->coordinator->role() == FailoverCoordinator::Role::kPublisher) {
        ++publishers;
      }
    }
    if (publishers == 1) break;
  }
  int publishers = 0;
  std::uint64_t max_term = 0;
  for (const auto& node : nodes_) {
    if (node->coordinator->role() == FailoverCoordinator::Role::kPublisher) {
      ++publishers;
      max_term = std::max(max_term, node->coordinator->term());
    }
  }
  EXPECT_EQ(publishers, 1);
  EXPECT_GE(max_term, 1u);
}

}  // namespace
}  // namespace p4p::proto

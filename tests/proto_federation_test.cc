// Federated serving plane tests: frame codec totality, monotone installs,
// byte-identical follower serving, publisher push/pull/beacon replication
// under lossy links, directory version epochs, static publisher election,
// and the end-to-end failover guarantee — a version token obtained from the
// publisher must earn NotModified from a follower after failover.
#include "proto/federation.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>

#include "core/policy.h"
#include "net/topology.h"
#include "proto/resilient_client.h"
#include "support/fault_injection.h"

namespace p4p::proto {
namespace {

// --- codec ------------------------------------------------------------------

class FederationCodecTest : public ::testing::Test {
 protected:
  SnapshotFrameSet MakeFrames(std::uint64_t version, int num_pids) {
    SnapshotFrameSet f;
    f.version = version;
    f.num_pids = num_pids;
    f.not_modified = Encode(NotModifiedResp{version});
    GetExternalViewResp view;
    view.num_pids = num_pids;
    view.version = version;
    view.distances.assign(
        static_cast<std::size_t>(num_pids) * static_cast<std::size_t>(num_pids), 1.5);
    f.external_view = Encode(view);
    for (int i = 0; i < num_pids; ++i) {
      GetPDistancesResp row;
      row.from = i;
      row.version = version;
      row.distances.assign(static_cast<std::size_t>(num_pids), 2.5);
      f.rows.push_back(Encode(row));
    }
    return f;
  }
};

TEST_F(FederationCodecTest, PushRoundTrip) {
  auto frames = MakeFrames(7, 4);
  frames.policy = Encode(GetPolicyResp{});
  const auto bytes = EncodeFramePush(frames);
  EXPECT_EQ(PeekFederationTag(bytes), FederationTag::kFramePush);
  const auto decoded = DecodeFramePush(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->version, 7u);
  EXPECT_EQ(decoded->num_pids, 4);
  EXPECT_EQ(decoded->not_modified, frames.not_modified);
  EXPECT_EQ(decoded->external_view, frames.external_view);
  EXPECT_EQ(decoded->rows, frames.rows);
  EXPECT_EQ(decoded->policy, frames.policy);
}

TEST_F(FederationCodecTest, PushRoundTripWithoutPolicy) {
  const auto frames = MakeFrames(3, 2);
  const auto decoded = DecodeFramePush(EncodeFramePush(frames));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->policy.empty());
}

TEST_F(FederationCodecTest, PushRejectsCorruptionAndTruncation) {
  const auto bytes = EncodeFramePush(MakeFrames(5, 3));
  // Any single-bit flip must be caught by the trailing FNV checksum (or the
  // header checks); sample positions across the frame.
  for (std::size_t pos = 0; pos < bytes.size(); pos += 7) {
    auto corrupt = bytes;
    corrupt[pos] ^= 0x40;
    EXPECT_FALSE(DecodeFramePush(corrupt).has_value()) << "bit flip at " << pos;
  }
  for (const std::size_t len : {std::size_t{0}, std::size_t{5}, std::size_t{9},
                                bytes.size() - 5, bytes.size() - 1}) {
    EXPECT_FALSE(
        DecodeFramePush(std::span(bytes).first(len)).has_value())
        << "truncated to " << len;
  }
  // Trailing garbage after a valid frame is rejected too.
  auto extended = bytes;
  extended.push_back(0);
  EXPECT_FALSE(DecodeFramePush(extended).has_value());
}

TEST_F(FederationCodecTest, AckPullBeaconRoundTrip) {
  const auto ack_bytes = EncodeFrameAck(FrameAck{AckStatus::kInstalled, 9});
  EXPECT_EQ(PeekFederationTag(ack_bytes), FederationTag::kFrameAck);
  const auto ack = DecodeFrameAck(ack_bytes);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->status, AckStatus::kInstalled);
  EXPECT_EQ(ack->version, 9u);

  const auto pull_bytes = EncodeFramePull(FramePull{4});
  EXPECT_EQ(PeekFederationTag(pull_bytes), FederationTag::kFramePull);
  const auto pull = DecodeFramePull(pull_bytes);
  ASSERT_TRUE(pull.has_value());
  EXPECT_EQ(pull->have_version, 4u);

  const auto beacon_bytes = EncodeBeacon(12);
  EXPECT_EQ(PeekFederationTag(beacon_bytes), FederationTag::kBeacon);
  EXPECT_EQ(DecodeBeacon(beacon_bytes), 12u);

  // Cross-tag decoding fails: a beacon is not an ack and vice versa.
  EXPECT_FALSE(DecodeFrameAck(beacon_bytes).has_value());
  EXPECT_FALSE(DecodeBeacon(ack_bytes).has_value());
  EXPECT_FALSE(DecodeFramePush(pull_bytes).has_value());
}

TEST_F(FederationCodecTest, DecodersTotalOnRandomBytes) {
  std::mt19937_64 rng(0xFEDED);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> noise(rng() % 64);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng());
    // Random bytes must never decode (the 1-in-2^32 checksum fluke aside,
    // these seeds don't hit it) and must never crash.
    EXPECT_FALSE(DecodeFramePush(noise).has_value());
    EXPECT_FALSE(DecodeFrameAck(noise).has_value());
    EXPECT_FALSE(DecodeFramePull(noise).has_value());
    EXPECT_FALSE(DecodeBeacon(noise).has_value());
  }
}

// --- store ------------------------------------------------------------------

TEST(FederationStoreTest, InstallsAreMonotone) {
  ReplicatedSnapshotStore store;
  EXPECT_EQ(store.current(), nullptr);
  EXPECT_EQ(store.version(), 0u);

  SnapshotFrameSet v2;
  v2.version = 2;
  EXPECT_TRUE(store.Install(v2));
  EXPECT_EQ(store.version(), 2u);

  SnapshotFrameSet v1;
  v1.version = 1;
  EXPECT_FALSE(store.Install(v1));  // older: ignored
  EXPECT_EQ(store.version(), 2u);
  EXPECT_FALSE(store.Install(v2));  // duplicate: ignored
  EXPECT_EQ(store.version(), 2u);
  EXPECT_EQ(store.install_count(), 1u);
  EXPECT_EQ(store.stale_install_count(), 2u);

  // A reader holding the old frame set keeps it across a newer install.
  const auto held = store.current();
  SnapshotFrameSet v3;
  v3.version = 3;
  EXPECT_TRUE(store.Install(v3));
  EXPECT_EQ(held->version, 2u);
  EXPECT_EQ(store.version(), 3u);
}

// --- replica fixtures -------------------------------------------------------

class FederationTest : public ::testing::Test {
 protected:
  FederationTest()
      : graph_(net::MakeAbilene()), routing_(graph_), tracker_(graph_, routing_),
        service_(&tracker_, &policy_), follower_service_(&store_),
        follower_(&store_) {
    policy_.SetThresholds(core::UsageThresholds{0.7, 0.9});
  }

  /// Bumps the tracker's price version deterministically.
  void BumpVersion(int round) {
    std::vector<double> prices(graph_.link_count());
    for (std::size_t e = 0; e < prices.size(); ++e) {
      prices[e] = 1e-9 * (1.0 + static_cast<double>((round + 1) * (e + 1)));
    }
    tracker_.SetStaticPrices(prices);
  }

  net::Graph graph_;
  net::RoutingTable routing_;
  core::ITracker tracker_;
  core::PolicyRegistry policy_;
  ITrackerService service_;
  ReplicatedSnapshotStore store_;
  FollowerPortalService follower_service_;
  SnapshotFollower follower_;
};

TEST_F(FederationTest, ExportFramesMatchesServedBytes) {
  BumpVersion(0);
  const auto frames = service_.ExportFrames();
  EXPECT_EQ(frames.version, tracker_.version());
  EXPECT_EQ(frames.num_pids, tracker_.num_pids());
  EXPECT_EQ(frames.external_view, service_.Handle(Encode(GetExternalViewReq{})));
  EXPECT_EQ(frames.rows.size(), static_cast<std::size_t>(tracker_.num_pids()));
  for (core::Pid i = 0; i < tracker_.num_pids(); ++i) {
    EXPECT_EQ(frames.rows[static_cast<std::size_t>(i)],
              service_.Handle(Encode(GetPDistancesReq{i})));
  }
  EXPECT_EQ(frames.not_modified,
            service_.Handle(Encode(GetExternalViewReq{frames.version})));
  EXPECT_EQ(frames.policy, service_.Handle(Encode(GetPolicyReq{})));
}

TEST_F(FederationTest, FollowerServesByteIdenticalFrames) {
  BumpVersion(0);
  ASSERT_TRUE(store_.Install(service_.ExportFrames()));
  const auto version = tracker_.version();

  // Every follower answer is byte-identical to the publisher's.
  for (const auto& request :
       {Encode(GetExternalViewReq{}), Encode(GetExternalViewReq{version}),
        Encode(GetPDistancesReq{3}), Encode(GetPDistancesReq{3, version}),
        Encode(GetPolicyReq{})}) {
    EXPECT_EQ(follower_service_.Handle(request), service_.Handle(request));
  }
  // Out-of-range PID errors identically.
  EXPECT_EQ(follower_service_.Handle(Encode(GetPDistancesReq{99})),
            service_.Handle(Encode(GetPDistancesReq{99})));

  // UDP validation answers are byte-identical as well (same nonce in, same
  // pre-encoded NotModifiedResp tail out).
  const auto datagram = EncodeValidationRequest(ValidationRequest{77, version});
  EXPECT_EQ(follower_service_.HandleValidationDatagram(datagram),
            service_.HandleValidationDatagram(datagram));
}

TEST_F(FederationTest, FollowerShedsBeforeFirstInstall) {
  const auto response = follower_service_.Handle(Encode(GetExternalViewReq{}));
  const auto decoded = Decode(response);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_NE(std::get_if<UnavailableResp>(&*decoded), nullptr);
  // Validation datagrams get silence, not a bogus version.
  EXPECT_EQ(follower_service_.HandleValidationDatagram(
                EncodeValidationRequest(ValidationRequest{1, 5})),
            std::nullopt);
}

TEST_F(FederationTest, PublishOncePushesAndCachesPerVersion) {
  SnapshotPublisher publisher(&service_);
  publisher.AddFollower("b.example", 1,
                        std::make_unique<InProcessTransport>(
                            follower_.replication_handler()));

  BumpVersion(0);
  EXPECT_EQ(publisher.PublishOnce(), 1u);
  EXPECT_EQ(store_.version(), tracker_.version());
  EXPECT_EQ(publisher.published_version(), tracker_.version());
  EXPECT_EQ(publisher.push_count(), 1u);

  // Republishing the same version pushes nothing.
  EXPECT_EQ(publisher.PublishOnce(), 1u);
  EXPECT_EQ(publisher.push_count(), 1u);

  BumpVersion(1);
  EXPECT_EQ(publisher.PublishOnce(), 1u);
  EXPECT_EQ(store_.version(), tracker_.version());
  EXPECT_EQ(publisher.push_count(), 2u);
  EXPECT_EQ(follower_.push_install_count(), 2u);
  EXPECT_EQ(publisher.push_failure_count(), 0u);
}

TEST_F(FederationTest, VersionListenerFiresOnEveryMutator) {
  std::vector<std::uint64_t> seen;
  tracker_.RegisterVersionListener([&seen](std::uint64_t v) { seen.push_back(v); });

  tracker_.SetUniformPrices();
  tracker_.SetPricesFromOspf();
  BumpVersion(0);  // SetStaticPrices
  std::vector<double> background(graph_.link_count(), 1e6);
  tracker_.set_background_bps(background);
  std::vector<double> p4p(graph_.link_count(), 5e5);
  tracker_.Update(p4p);

  ASSERT_EQ(seen.size(), 5u);
  for (std::size_t i = 1; i < seen.size(); ++i) EXPECT_GT(seen[i], seen[i - 1]);
  EXPECT_EQ(seen.back(), tracker_.version());
}

TEST_F(FederationTest, BeaconGapDetectionTriggersPull) {
  SnapshotPublisher publisher(&service_);
  BumpVersion(0);
  // No push channel: the follower only hears the beacon.
  EXPECT_FALSE(follower_.behind());
  EXPECT_EQ(follower_.HandleBeacon(publisher.BeaconFrame()), std::nullopt);
  EXPECT_TRUE(follower_.behind());
  EXPECT_EQ(follower_.beacon_version(), tracker_.version());

  InProcessTransport to_publisher(publisher.replication_handler());
  EXPECT_TRUE(follower_.PullOnce(to_publisher));
  EXPECT_EQ(store_.version(), tracker_.version());
  EXPECT_FALSE(follower_.behind());
  EXPECT_EQ(publisher.pull_served_count(), 1u);

  // Already current: the next pull is answered kAlreadyCurrent.
  EXPECT_FALSE(follower_.PullOnce(to_publisher));
  EXPECT_EQ(follower_.pull_install_count(), 1u);

  // A stale (reordered) beacon never shrinks the known horizon.
  follower_.HandleBeacon(EncodeBeacon(1));
  EXPECT_EQ(follower_.beacon_version(), tracker_.version());
  // Corrupt beacons are dropped by checksum.
  auto corrupt = publisher.BeaconFrame();
  corrupt[8] ^= 0x01;
  follower_.HandleBeacon(corrupt);
  EXPECT_EQ(follower_.beacon_version(), tracker_.version());
}

// A request/response channel that drops (throws) or corrupts frames with
// seeded randomness — the TCP-push analogue of FaultyDatagramLink.
class LossyFrameChannel final : public Transport {
 public:
  LossyFrameChannel(Handler backend, double drop_rate, double corrupt_rate,
                    std::uint64_t seed)
      : backend_(std::move(backend)), drop_rate_(drop_rate),
        corrupt_rate_(corrupt_rate), rng_(seed) {}

  std::vector<std::uint8_t> Call(std::span<const std::uint8_t> request) override {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    if (u(rng_) < drop_rate_) throw std::runtime_error("request lost");
    std::vector<std::uint8_t> delivered(request.begin(), request.end());
    if (!delivered.empty() && u(rng_) < corrupt_rate_) FlipBit(delivered);
    auto response = backend_(delivered);
    if (u(rng_) < drop_rate_) throw std::runtime_error("response lost");
    if (!response.empty() && u(rng_) < corrupt_rate_) FlipBit(response);
    return response;
  }

 private:
  void FlipBit(std::vector<std::uint8_t>& bytes) {
    std::uniform_int_distribution<std::size_t> pick(0, bytes.size() * 8 - 1);
    const std::size_t bit = pick(rng_);
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }

  Handler backend_;
  double drop_rate_;
  double corrupt_rate_;
  std::mt19937_64 rng_;
};

TEST_F(FederationTest, LossyReplicationConvergesWithInvariants) {
  // Fresh replica state per run lives in the fixture; this test drives one
  // lossy scenario and checks the safety invariants every round.
  SnapshotPublisher publisher(&service_);
  publisher.AddFollower(
      "b.example", 1,
      std::make_unique<LossyFrameChannel>(follower_.replication_handler(),
                                          /*drop_rate=*/0.3, /*corrupt_rate=*/0.3,
                                          /*seed=*/0xBADBEEF));
  InProcessTransport pull_channel(publisher.replication_handler());

  std::mt19937_64 beacon_rng(0xB34C04);
  testsupport::FaultProfile beacon_faults;
  beacon_faults.drop_rate = 0.3;
  beacon_faults.reorder_rate = 0.3;
  beacon_faults.corrupt_rate = 0.2;
  beacon_faults.delay_rate = 0.3;
  testsupport::FaultyDatagramLink beacon_link(beacon_faults, &beacon_rng);

  std::uint64_t last_served_version = 0;
  for (int round = 0; round < 40; ++round) {
    BumpVersion(round);
    publisher.PublishOnce();
    beacon_link.Push(publisher.BeaconFrame());
    beacon_link.Tick();
    while (auto datagram = beacon_link.Pop()) follower_.HandleBeacon(*datagram);
    if (follower_.behind()) {
      try {
        follower_.PullOnce(pull_channel);
      } catch (const std::exception&) {
      }
    }

    // Invariant: whatever the follower serves is a complete frame set of
    // one published version — never a version it holds no frames for,
    // never a mix, never a rollback.
    const auto frames = store_.current();
    const auto response = follower_service_.Handle(Encode(GetExternalViewReq{}));
    if (!frames) {
      const auto decoded = Decode(response);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_NE(std::get_if<UnavailableResp>(&*decoded), nullptr);
      continue;
    }
    EXPECT_EQ(response, frames->external_view);
    const auto decoded = Decode(response);
    ASSERT_TRUE(decoded.has_value());
    const auto* view = std::get_if<GetExternalViewResp>(&*decoded);
    ASSERT_NE(view, nullptr);
    EXPECT_EQ(view->version, frames->version);
    EXPECT_LE(view->version, tracker_.version());
    EXPECT_GE(view->version, last_served_version);  // monotone
    last_served_version = view->version;
  }

  // Corruption was detected, never installed: rejects happened, yet every
  // installed frame set decoded cleanly (Install only sees decoded frames).
  EXPECT_GT(follower_.push_rejected_count() + follower_.push_install_count(), 0u);

  // Anti-entropy closes the gap once the link heals.
  while (store_.version() < tracker_.version()) {
    follower_.PullOnce(pull_channel);
  }
  EXPECT_EQ(store_.version(), tracker_.version());
  EXPECT_EQ(follower_service_.Handle(Encode(GetExternalViewReq{})),
            service_.Handle(Encode(GetExternalViewReq{})));
}

TEST(FederationReplayTest, LossySameSeedReplayIsBitIdentical) {
  // The whole lossy scenario — fault decisions, installs, served bytes — is
  // a pure function of the seed. Two runs must match bit for bit.
  const auto run = [](std::uint64_t seed) {
    net::Graph graph = net::MakeAbilene();
    net::RoutingTable routing(graph);
    core::ITracker tracker(graph, routing);
    ITrackerService service(&tracker);
    ReplicatedSnapshotStore store;
    FollowerPortalService follower_service(&store);
    SnapshotFollower follower(&store);
    SnapshotPublisher publisher(&service);
    publisher.AddFollower(
        "b.example", 1,
        std::make_unique<LossyFrameChannel>(follower.replication_handler(), 0.35,
                                            0.35, seed));

    std::vector<std::uint64_t> versions;
    std::vector<std::uint8_t> served;
    for (int round = 0; round < 30; ++round) {
      std::vector<double> prices(graph.link_count());
      for (std::size_t e = 0; e < prices.size(); ++e) {
        prices[e] = 1e-9 * static_cast<double>((round + 1) + 3 * e);
      }
      tracker.SetStaticPrices(prices);
      publisher.PublishOnce();
      versions.push_back(store.version());
      const auto response = follower_service.Handle(Encode(GetExternalViewReq{}));
      served.insert(served.end(), response.begin(), response.end());
    }
    return std::make_pair(versions, served);
  };

  const auto first = run(0x5EED);
  const auto second = run(0x5EED);
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  // A different seed takes a different lossy path (sanity that the faults
  // actually bite).
  const auto other = run(0xD1FF);
  EXPECT_NE(first.first, other.first);
}

TEST_F(FederationTest, DirectoryEpochsSteerClientsAwayFromLaggards) {
  PortalDirectory directory;
  directory.AddRecord("isp.example", SrvRecord{"fresh.example", 7001, 0, 1});
  directory.AddRecord("isp.example", SrvRecord{"laggard.example", 7002, 0, 1});
  directory.UpdateVersionEpoch("isp.example", "fresh.example", 7001, 5);
  directory.UpdateVersionEpoch("isp.example", "laggard.example", 7002, 2);
  EXPECT_EQ(directory.version_epoch("isp.example", "fresh.example", 7001), 5u);
  EXPECT_EQ(directory.max_version_epoch("isp.example"), 5u);
  // Epochs are monotone: an out-of-order (older) ack cannot regress one.
  EXPECT_EQ(directory.UpdateVersionEpoch("isp.example", "fresh.example", 7001, 3), 0u);
  EXPECT_EQ(directory.version_epoch("isp.example", "fresh.example", 7001), 5u);
  // Unknown endpoints are not invented.
  EXPECT_EQ(directory.UpdateVersionEpoch("isp.example", "ghost.example", 9, 9), 0u);

  // With prefer_fresh_replicas, the fresh replica is tried first on every
  // call, regardless of where the SRV weighted shuffle puts it.
  std::atomic<int> fresh_calls{0};
  std::atomic<int> laggard_calls{0};
  ResilientClientOptions options;
  options.prefer_fresh_replicas = true;
  ResilientPortalClient client(
      &directory, "isp.example",
      [&](const SrvRecord& record) -> std::unique_ptr<Transport> {
        auto& counter = record.target == "fresh.example" ? fresh_calls : laggard_calls;
        return std::make_unique<InProcessTransport>(
            [&counter](std::span<const std::uint8_t>) {
              ++counter;
              return Encode(NotModifiedResp{5});
            });
      },
      options);

  for (int i = 0; i < 20; ++i) {
    client.Call(Encode(GetExternalViewReq{5}));
  }
  EXPECT_EQ(fresh_calls.load(), 20);
  EXPECT_EQ(laggard_calls.load(), 0);
  EXPECT_EQ(client.laggard_demotion_count(), 20u);
}

TEST_F(FederationTest, ElectPublisherIsDeterministic) {
  PortalDirectory directory;
  EXPECT_EQ(ElectPublisher(directory, "isp.example"), std::nullopt);
  directory.AddRecord("isp.example", SrvRecord{"c.example", 7003, 1, 9});
  directory.AddRecord("isp.example", SrvRecord{"b.example", 7002, 0, 1});
  directory.AddRecord("isp.example", SrvRecord{"a.example", 7001, 0, 100});

  // Lowest priority wins; the weight never matters for election. Ties break
  // on (target, port) so every replica elects the same publisher.
  const auto elected = ElectPublisher(directory, "isp.example");
  ASSERT_TRUE(elected.has_value());
  EXPECT_EQ(elected->target, "a.example");
  EXPECT_EQ(elected->port, 7001);

  directory.AddRecord("isp.example", SrvRecord{"a.example", 7000, 0, 1});
  EXPECT_EQ(ElectPublisher(directory, "isp.example")->port, 7000);
}

// --- end-to-end failover over real sockets ----------------------------------

TEST(FederationFailoverTest, VersionTokenStaysValidAcrossReplicaFailover) {
  net::Graph graph = net::MakeAbilene();
  net::RoutingTable routing(graph);
  core::ITracker tracker(graph, routing);
  ITrackerService service(&tracker);

  ReplicatedSnapshotStore store;
  FollowerPortalService follower_service(&store);
  SnapshotFollower follower(&store);

  // Replica A: the publisher's portal. Replica B: a follower portal plus
  // its replication endpoint, all on real sockets.
  auto server_a = std::make_unique<TcpServer>(0, service.shared_handler(), 1);
  TcpServer server_b(0, follower_service.shared_handler(), 1);
  TcpServer replication_b(0, [&follower](std::span<const std::uint8_t> req) {
    return follower.HandleReplication(req);
  });

  PortalDirectory directory;
  directory.AddRecord("isp.example",
                      SrvRecord{"a.example", server_a->port(), 0, 1});
  directory.AddRecord("isp.example", SrvRecord{"b.example", server_b.port(), 1, 1});

  PublisherOptions pub_options;
  pub_options.directory = &directory;
  pub_options.domain = "isp.example";
  pub_options.self_target = "a.example";
  pub_options.self_port = server_a->port();
  SnapshotPublisher publisher(&service, pub_options);
  publisher.AddFollower("b.example", server_b.port(),
                        std::make_unique<TcpClient>(replication_b.port()));

  std::vector<double> prices(graph.link_count(), 2e-9);
  tracker.SetStaticPrices(prices);
  ASSERT_EQ(publisher.PublishOnce(), 1u);
  ASSERT_EQ(store.version(), tracker.version());
  EXPECT_EQ(directory.version_epoch("isp.example", "b.example", server_b.port()),
            tracker.version());
  EXPECT_EQ(directory.max_version_epoch("isp.example"), tracker.version());

  // All replicas serve behind one failover transport (every connection goes
  // to the live SRV-preferred replica).
  ResilientClientOptions options;
  options.prefer_fresh_replicas = true;
  auto resilient = std::make_unique<ResilientPortalClient>(
      &directory, "isp.example",
      [](const SrvRecord& record) -> std::unique_ptr<Transport> {
        return std::make_unique<TcpClient>(record.port);
      },
      options);
  auto* resilient_raw = resilient.get();
  PortalClient client(std::move(resilient));

  // Fetch from replica A (priority 0) and hold its version token.
  const auto [view, version] = client.GetExternalViewWithVersion();
  ASSERT_EQ(version, tracker.version());

  // Kill the publisher. The token must stay valid: replica B answers the
  // conditional fetch with NotModified from the replicated frames.
  server_a.reset();
  const auto refreshed = client.GetExternalViewIfModified(version);
  EXPECT_FALSE(refreshed.has_value()) << "follower re-sent the matrix";
  EXPECT_GE(resilient_raw->failover_count(), 1u);

  // And a full fetch from B returns the same view bytes version-for-version.
  const auto [view_b, version_b] = client.GetExternalViewWithVersion();
  EXPECT_EQ(version_b, version);
  EXPECT_EQ(view_b.values().size(), view.values().size());
  for (std::size_t i = 0; i < view.values().size(); ++i) {
    EXPECT_EQ(view.values()[i], view_b.values()[i]);
  }
}

// --- publisher-republish vs follower-serve hammer (TSan target) -------------

TEST(FederationConcurrencyTest, RepublishVsServeHammer) {
  net::Graph graph = net::MakeAbilene();
  net::RoutingTable routing(graph);
  core::ITracker tracker(graph, routing);
  ITrackerService service(&tracker);
  ReplicatedSnapshotStore store;
  FollowerPortalService follower_service(&store);
  SnapshotFollower follower(&store);
  SnapshotPublisher publisher(&service);
  publisher.AddFollower("b.example", 1,
                        std::make_unique<InProcessTransport>(
                            follower.replication_handler()));

  // The republish trigger under test: every version bump publishes.
  tracker.RegisterVersionListener([&publisher](std::uint64_t) {
    publisher.PublishOnce();
  });

  constexpr int kMutations = 300;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> served{0};

  // 1 mutator/publisher thread + 1 beacon thread + 1 pull thread + 5
  // serve threads = 8 threads hammering the shared store.
  std::thread mutator([&] {
    std::vector<double> prices(graph.link_count());
    for (int round = 0; round < kMutations; ++round) {
      for (std::size_t e = 0; e < prices.size(); ++e) {
        prices[e] = 1e-9 * static_cast<double>((round + 1) + e);
      }
      tracker.SetStaticPrices(prices);
    }
    done.store(true);
  });

  std::thread beaconer([&] {
    while (!done.load()) follower.HandleBeacon(publisher.BeaconFrame());
  });

  std::thread puller([&] {
    InProcessTransport to_publisher(publisher.replication_handler());
    while (!done.load()) {
      if (follower.behind()) follower.PullOnce(to_publisher);
    }
  });

  std::vector<std::thread> servers;
  for (int t = 0; t < 5; ++t) {
    servers.emplace_back([&, t] {
      std::uint64_t last_version = 0;
      const auto view_req = Encode(GetExternalViewReq{});
      while (!done.load()) {
        const auto response = follower_service.HandleShared(view_req);
        const auto decoded = Decode(*response);
        ASSERT_TRUE(decoded.has_value());
        if (const auto* view = std::get_if<GetExternalViewResp>(&*decoded)) {
          ASSERT_GE(view->version, last_version);  // never a rollback
          last_version = view->version;
          // Conditional re-ask with the version just seen must yield
          // NotModified for that version or a newer full view.
          const auto conditional =
              Decode(follower_service.Handle(Encode(GetExternalViewReq{view->version})));
          ASSERT_TRUE(conditional.has_value());
          if (const auto* nm = std::get_if<NotModifiedResp>(&*conditional)) {
            ASSERT_EQ(nm->version, view->version);
          } else {
            const auto* newer = std::get_if<GetExternalViewResp>(&*conditional);
            ASSERT_NE(newer, nullptr);
            ASSERT_GT(newer->version, view->version);
          }
          // Row and validation answers come from one coherent frame set.
          const auto row = Decode(follower_service.Handle(
              Encode(GetPDistancesReq{static_cast<core::Pid>(t)})));
          ASSERT_TRUE(row.has_value());
          follower_service.HandleValidationDatagram(
              EncodeValidationRequest(ValidationRequest{served.load(), view->version}));
          served.fetch_add(1);
        } else {
          // Before the first install only UnavailableResp is acceptable.
          ASSERT_NE(std::get_if<UnavailableResp>(&*decoded), nullptr);
        }
      }
    });
  }

  mutator.join();
  beaconer.join();
  puller.join();
  for (auto& t : servers) t.join();

  // Convergence: one final publish round settles the follower at the last
  // version.
  publisher.PublishOnce();
  InProcessTransport to_publisher(publisher.replication_handler());
  follower.PullOnce(to_publisher);
  EXPECT_EQ(store.version(), tracker.version());
  EXPECT_GT(served.load(), 0u);
  EXPECT_EQ(follower_service.Handle(Encode(GetExternalViewReq{})),
            service.Handle(Encode(GetExternalViewReq{})));
}

}  // namespace
}  // namespace p4p::proto

// Federated serving plane tests: frame codec totality, monotone installs,
// byte-identical follower serving, publisher push/pull/beacon replication
// under lossy links, directory version epochs, static publisher election,
// and the end-to-end failover guarantee — a version token obtained from the
// publisher must earn NotModified from a follower after failover.
#include "proto/federation.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>

#include "core/policy.h"
#include "net/topology.h"
#include "proto/resilient_client.h"
#include "support/fault_injection.h"

namespace p4p::proto {
namespace {

// --- codec ------------------------------------------------------------------

class FederationCodecTest : public ::testing::Test {
 protected:
  /// A coherent frame set: the external view's doubles and each row's
  /// doubles agree (row i is view row i), every frame's embedded version
  /// matches its content stamp — exactly what ITrackerService exports and
  /// what the delta splice/checksum chain depends on.
  SnapshotFrameSet MakeFrames(std::uint64_t version, int num_pids,
                              double fill = 1.5) {
    const auto n = static_cast<std::size_t>(num_pids);
    SnapshotFrameSet f;
    f.version = version;
    f.view_version = version;
    f.num_pids = num_pids;
    f.row_versions.assign(n, version);
    f.not_modified = Encode(NotModifiedResp{version});
    GetExternalViewResp view;
    view.num_pids = num_pids;
    view.version = version;
    view.distances.assign(n * n, fill);
    f.external_view = Encode(view);
    for (int i = 0; i < num_pids; ++i) {
      GetPDistancesResp row;
      row.from = i;
      row.version = version;
      row.distances.assign(n, fill);
      f.rows.push_back(Encode(row));
    }
    return f;
  }

  /// The frame set at `version` after re-pricing only `changed_pids` rows
  /// (their doubles become `value`, their stamps `version`); everything
  /// else carries the base's bytes and stamps forward, the way the
  /// service's diff-based rebuild does.
  SnapshotFrameSet Advance(const SnapshotFrameSet& base, std::uint64_t version,
                           const std::vector<int>& changed_pids, double value) {
    const auto n = static_cast<std::size_t>(base.num_pids);
    SnapshotFrameSet next = base;
    next.version = version;
    next.not_modified = Encode(NotModifiedResp{version});
    if (changed_pids.empty()) return next;
    next.view_version = version;
    // Rebuild the coherent view: decode the base's doubles row by row.
    GetExternalViewResp view;
    view.num_pids = base.num_pids;
    view.version = version;
    view.distances.reserve(n * n);
    for (int i = 0; i < base.num_pids; ++i) {
      const auto decoded = Decode(next.rows[static_cast<std::size_t>(i)]);
      view.distances.insert(
          view.distances.end(),
          std::get<GetPDistancesResp>(*decoded).distances.begin(),
          std::get<GetPDistancesResp>(*decoded).distances.end());
    }
    for (const int pid : changed_pids) {
      GetPDistancesResp row;
      row.from = pid;
      row.version = version;
      row.distances.assign(n, value);
      next.rows[static_cast<std::size_t>(pid)] = Encode(row);
      next.row_versions[static_cast<std::size_t>(pid)] = version;
      std::fill_n(view.distances.begin() + pid * base.num_pids, n, value);
    }
    next.external_view = Encode(view);
    return next;
  }

  /// The delta a correct publisher would ship to advance `base` to
  /// `target`: rows stamped newer than base, target checksum sealed in.
  DeltaPush MakeDelta(const SnapshotFrameSet& base, const SnapshotFrameSet& target) {
    DeltaPush delta;
    delta.base_version = base.version;
    delta.version = target.version;
    delta.view_version = target.view_version;
    delta.num_pids = target.num_pids;
    delta.not_modified = target.not_modified;
    delta.policy = target.policy;
    delta.result_checksum = FrameSetChecksum(target);
    for (std::size_t i = 0; i < target.rows.size(); ++i) {
      if (target.row_versions[i] > base.version) {
        delta.rows.push_back(DeltaRow{static_cast<std::int32_t>(i),
                                      target.row_versions[i], target.rows[i]});
      }
    }
    return delta;
  }
};

TEST_F(FederationCodecTest, PushRoundTrip) {
  auto frames = MakeFrames(7, 4);
  frames.view_version = 5;
  frames.row_versions = {5, 7, 3, 7};
  frames.policy = Encode(GetPolicyResp{});
  const auto bytes = EncodeFramePush(frames);
  EXPECT_EQ(PeekFederationTag(bytes), FederationTag::kFramePush);
  const auto decoded = DecodeFramePush(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->version, 7u);
  EXPECT_EQ(decoded->view_version, 5u);
  EXPECT_EQ(decoded->num_pids, 4);
  EXPECT_EQ(decoded->row_versions, frames.row_versions);
  EXPECT_EQ(decoded->not_modified, frames.not_modified);
  EXPECT_EQ(decoded->external_view, frames.external_view);
  EXPECT_EQ(decoded->rows, frames.rows);
  EXPECT_EQ(decoded->policy, frames.policy);
}

TEST_F(FederationCodecTest, PushRoundTripWithoutPolicy) {
  const auto frames = MakeFrames(3, 2);
  const auto decoded = DecodeFramePush(EncodeFramePush(frames));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->policy.empty());
}

TEST_F(FederationCodecTest, PushRejectsCorruptionAndTruncation) {
  const auto bytes = EncodeFramePush(MakeFrames(5, 3));
  // Any single-bit flip must be caught by the trailing FNV checksum (or the
  // header checks); sample positions across the frame.
  for (std::size_t pos = 0; pos < bytes.size(); pos += 7) {
    auto corrupt = bytes;
    corrupt[pos] ^= 0x40;
    EXPECT_FALSE(DecodeFramePush(corrupt).has_value()) << "bit flip at " << pos;
  }
  for (const std::size_t len : {std::size_t{0}, std::size_t{5}, std::size_t{9},
                                bytes.size() - 5, bytes.size() - 1}) {
    EXPECT_FALSE(
        DecodeFramePush(std::span(bytes).first(len)).has_value())
        << "truncated to " << len;
  }
  // Trailing garbage after a valid frame is rejected too.
  auto extended = bytes;
  extended.push_back(0);
  EXPECT_FALSE(DecodeFramePush(extended).has_value());
}

TEST_F(FederationCodecTest, AckPullBeaconRoundTrip) {
  const auto ack_bytes = EncodeFrameAck(FrameAck{AckStatus::kInstalled, 9});
  EXPECT_EQ(PeekFederationTag(ack_bytes), FederationTag::kFrameAck);
  const auto ack = DecodeFrameAck(ack_bytes);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->status, AckStatus::kInstalled);
  EXPECT_EQ(ack->version, 9u);

  const auto pull_bytes = EncodeFramePull(FramePull{4});
  EXPECT_EQ(PeekFederationTag(pull_bytes), FederationTag::kFramePull);
  const auto pull = DecodeFramePull(pull_bytes);
  ASSERT_TRUE(pull.has_value());
  EXPECT_EQ(pull->have_version, 4u);
  EXPECT_FALSE(pull->want_full);
  const auto full_pull =
      DecodeFramePull(EncodeFramePull(FramePull{4, /*have_term=*/2, true}));
  ASSERT_TRUE(full_pull.has_value());
  EXPECT_TRUE(full_pull->want_full);

  // The newer ack statuses decode; anything past kStaleTerm stays rejected.
  const auto need_full =
      DecodeFrameAck(EncodeFrameAck(FrameAck{AckStatus::kNeedFullSet, 3}));
  ASSERT_TRUE(need_full.has_value());
  EXPECT_EQ(need_full->status, AckStatus::kNeedFullSet);
  const auto stale_term =
      DecodeFrameAck(EncodeFrameAck(FrameAck{AckStatus::kStaleTerm, 3, 7}));
  ASSERT_TRUE(stale_term.has_value());
  EXPECT_EQ(stale_term->status, AckStatus::kStaleTerm);
  EXPECT_EQ(stale_term->term, 7u);

  const auto beacon_bytes = EncodeBeacon(3, 12);
  EXPECT_EQ(PeekFederationTag(beacon_bytes), FederationTag::kBeacon);
  const auto beacon = DecodeBeacon(beacon_bytes);
  ASSERT_TRUE(beacon.has_value());
  EXPECT_EQ(beacon->term, 3u);
  EXPECT_EQ(beacon->version, 12u);

  // Cross-tag decoding fails: a beacon is not an ack and vice versa.
  EXPECT_FALSE(DecodeFrameAck(beacon_bytes).has_value());
  EXPECT_FALSE(DecodeBeacon(ack_bytes).has_value());
  EXPECT_FALSE(DecodeFramePush(pull_bytes).has_value());
}

TEST_F(FederationCodecTest, DecodersTotalOnRandomBytes) {
  std::mt19937_64 rng(0xFEDED);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> noise(rng() % 64);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng());
    // Random bytes must never decode (the 1-in-2^32 checksum fluke aside,
    // these seeds don't hit it) and must never crash.
    EXPECT_FALSE(DecodeFramePush(noise).has_value());
    EXPECT_FALSE(DecodeDeltaPush(noise).has_value());
    EXPECT_FALSE(DecodeFrameAck(noise).has_value());
    EXPECT_FALSE(DecodeFramePull(noise).has_value());
    EXPECT_FALSE(DecodeBeacon(noise).has_value());
  }
}

// --- delta codec ------------------------------------------------------------

TEST_F(FederationCodecTest, DeltaRoundTrip) {
  const auto base = MakeFrames(5, 4);
  auto target = Advance(base, 7, {1, 3}, 9.75);
  target.policy = Encode(GetPolicyResp{});
  const auto delta = MakeDelta(base, target);
  ASSERT_EQ(delta.rows.size(), 2u);

  const auto bytes = EncodeDeltaPush(delta);
  EXPECT_EQ(PeekFederationTag(bytes), FederationTag::kDeltaPush);
  const auto decoded = DecodeDeltaPush(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->base_version, 5u);
  EXPECT_EQ(decoded->version, 7u);
  EXPECT_EQ(decoded->view_version, 7u);
  EXPECT_EQ(decoded->num_pids, 4);
  EXPECT_EQ(decoded->not_modified, target.not_modified);
  EXPECT_EQ(decoded->policy, target.policy);
  EXPECT_EQ(decoded->result_checksum, FrameSetChecksum(target));
  ASSERT_EQ(decoded->rows.size(), 2u);
  EXPECT_EQ(decoded->rows[0].pid, 1);
  EXPECT_EQ(decoded->rows[0].row_version, 7u);
  EXPECT_EQ(decoded->rows[0].bytes, target.rows[1]);
  EXPECT_EQ(decoded->rows[1].pid, 3);

  // A no-op version bump travels as an empty delta (stamps carried over).
  const auto empty_delta = MakeDelta(base, Advance(base, 6, {}, 0.0));
  EXPECT_TRUE(empty_delta.rows.empty());
  const auto empty_decoded = DecodeDeltaPush(EncodeDeltaPush(empty_delta));
  ASSERT_TRUE(empty_decoded.has_value());
  EXPECT_TRUE(empty_decoded->rows.empty());
  EXPECT_EQ(empty_decoded->view_version, 5u);
}

TEST_F(FederationCodecTest, DeltaRejectsCorruptionAndTruncation) {
  const auto base = MakeFrames(4, 3);
  const auto bytes = EncodeDeltaPush(MakeDelta(base, Advance(base, 6, {0, 2}, 3.5)));
  // Every single-bit flip dies on the trailing checksum (or header checks).
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    auto corrupt = bytes;
    corrupt[pos] ^= 0x10;
    EXPECT_FALSE(DecodeDeltaPush(corrupt).has_value()) << "bit flip at " << pos;
  }
  for (const std::size_t len : {std::size_t{0}, std::size_t{5}, std::size_t{9},
                                bytes.size() - 7, bytes.size() - 1}) {
    EXPECT_FALSE(DecodeDeltaPush(std::span(bytes).first(len)).has_value())
        << "truncated to " << len;
  }
  auto extended = bytes;
  extended.push_back(0);
  EXPECT_FALSE(DecodeDeltaPush(extended).has_value());
  // Cross-tag confusion: a full push never decodes as a delta.
  EXPECT_FALSE(DecodeDeltaPush(EncodeFramePush(base)).has_value());
}

TEST_F(FederationCodecTest, DeltaRejectsIncoherentRelations) {
  const auto base = MakeFrames(5, 4);
  const auto target = Advance(base, 7, {1, 3}, 9.75);
  const auto good = MakeDelta(base, target);

  // Each mutation below could never come from a correct publisher; the
  // decoder refuses them structurally, before any store is involved.
  const auto expect_rejected = [](DeltaPush delta, const char* what) {
    EXPECT_FALSE(DecodeDeltaPush(EncodeDeltaPush(delta)).has_value()) << what;
  };
  {
    auto d = good;
    d.base_version = 7;  // base == version
    expect_rejected(d, "base not older than version");
  }
  {
    auto d = good;
    d.base_version = 9;  // base > version
    expect_rejected(d, "base newer than version");
  }
  {
    auto d = good;
    d.view_version = 8;  // view stamped past the set version
    expect_rejected(d, "view_version > version");
  }
  {
    auto d = good;
    std::swap(d.rows[0], d.rows[1]);  // pids 3, 1: not increasing
    expect_rejected(d, "rows out of pid order");
  }
  {
    auto d = good;
    d.rows[1].pid = 1;  // duplicate pid
    expect_rejected(d, "duplicate pid");
  }
  {
    auto d = good;
    d.rows[1].pid = 4;  // out of range
    expect_rejected(d, "pid >= num_pids");
  }
  {
    auto d = good;
    d.rows[0].row_version = 5;  // stamp not newer than base
    expect_rejected(d, "row stamp <= base");
  }
  {
    auto d = good;
    d.rows[0].row_version = 8;  // stamp newer than the set itself
    expect_rejected(d, "row stamp > version");
  }
  {
    auto d = good;
    d.num_pids = 1;  // more changed rows than pids exist
    expect_rejected(d, "row count exceeds num_pids");
  }
}

// --- delta installs ---------------------------------------------------------

class FederationDeltaStoreTest : public FederationCodecTest {
 protected:
  /// Field-by-field equality — a checksum collision must not pass this.
  static void ExpectSameFrames(const SnapshotFrameSet& got,
                               const SnapshotFrameSet& want) {
    EXPECT_EQ(got.version, want.version);
    EXPECT_EQ(got.view_version, want.view_version);
    EXPECT_EQ(got.num_pids, want.num_pids);
    EXPECT_EQ(got.not_modified, want.not_modified);
    EXPECT_EQ(got.external_view, want.external_view);
    EXPECT_EQ(got.rows, want.rows);
    EXPECT_EQ(got.row_versions, want.row_versions);
    EXPECT_EQ(got.policy, want.policy);
  }
};

TEST_F(FederationDeltaStoreTest, SplicesExactBaseDeltaByteForByte) {
  const auto base = MakeFrames(5, 4);
  const auto target = Advance(base, 7, {1, 3}, 9.75);
  ReplicatedSnapshotStore store;
  ASSERT_TRUE(store.Install(base));

  ASSERT_EQ(store.InstallDelta(MakeDelta(base, target)),
            ReplicatedSnapshotStore::DeltaResult::kInstalled);
  EXPECT_EQ(store.version(), 7u);
  // The spliced result — rows, view doubles, patched view version stamp —
  // is byte-identical to what a full push of the target would install.
  ExpectSameFrames(*store.current(), target);
  EXPECT_EQ(store.install_count(), 2u);
}

TEST_F(FederationDeltaStoreTest, EmptyDeltaAdvancesNoOpVersionBump) {
  const auto base = MakeFrames(5, 4);
  const auto target = Advance(base, 6, {}, 0.0);  // nothing repriced
  ReplicatedSnapshotStore store;
  ASSERT_TRUE(store.Install(base));
  ASSERT_EQ(store.InstallDelta(MakeDelta(base, target)),
            ReplicatedSnapshotStore::DeltaResult::kInstalled);
  EXPECT_EQ(store.version(), 6u);
  EXPECT_EQ(store.current()->view_version, 5u);  // stamps carried forward
  ExpectSameFrames(*store.current(), target);
}

TEST_F(FederationDeltaStoreTest, DuplicateAndReorderedDeltasNeverRollBack) {
  const auto v5 = MakeFrames(5, 4);
  const auto v7 = Advance(v5, 7, {1}, 2.0);
  const auto v9 = Advance(v7, 9, {2}, 3.0);
  ReplicatedSnapshotStore store;
  ASSERT_TRUE(store.Install(v5));
  ASSERT_EQ(store.InstallDelta(MakeDelta(v5, v7)),
            ReplicatedSnapshotStore::DeltaResult::kInstalled);
  ASSERT_EQ(store.InstallDelta(MakeDelta(v7, v9)),
            ReplicatedSnapshotStore::DeltaResult::kInstalled);

  // Duplicate of the 5->7 delta, and a reordered re-delivery of 7->9:
  // both stale, both ignored, held frames bit-identical afterwards.
  EXPECT_EQ(store.InstallDelta(MakeDelta(v5, v7)),
            ReplicatedSnapshotStore::DeltaResult::kStale);
  EXPECT_EQ(store.InstallDelta(MakeDelta(v7, v9)),
            ReplicatedSnapshotStore::DeltaResult::kStale);
  EXPECT_EQ(store.version(), 9u);
  ExpectSameFrames(*store.current(), v9);
  EXPECT_EQ(store.stale_install_count(), 2u);
}

TEST_F(FederationDeltaStoreTest, RefusesMismatchedBaseWithoutRollback) {
  const auto v5 = MakeFrames(5, 4);
  const auto v7 = Advance(v5, 7, {1}, 2.0);
  const auto v9 = Advance(v7, 9, {2}, 3.0);

  // A store that never installed anything has no base at all.
  ReplicatedSnapshotStore fresh;
  EXPECT_EQ(fresh.InstallDelta(MakeDelta(v5, v7)),
            ReplicatedSnapshotStore::DeltaResult::kBaseMismatch);
  EXPECT_EQ(fresh.current(), nullptr);

  // Held base 5, delta computed against 7: exact-base rule refuses it even
  // though the version is newer — "close enough" does not exist.
  ReplicatedSnapshotStore store;
  ASSERT_TRUE(store.Install(v5));
  EXPECT_EQ(store.InstallDelta(MakeDelta(v7, v9)),
            ReplicatedSnapshotStore::DeltaResult::kBaseMismatch);
  EXPECT_EQ(store.version(), 5u);
  ExpectSameFrames(*store.current(), v5);

  // Shape mismatch (different topology epoch) is a base mismatch too.
  const auto other = MakeFrames(5, 3);
  auto wrong_shape = MakeDelta(other, Advance(other, 7, {0}, 4.0));
  EXPECT_EQ(store.InstallDelta(wrong_shape),
            ReplicatedSnapshotStore::DeltaResult::kBaseMismatch);
  EXPECT_EQ(store.version(), 5u);
}

TEST_F(FederationDeltaStoreTest, ChecksumChainCatchesDivergenceWithoutRollback) {
  const auto v5 = MakeFrames(5, 4);
  const auto v7 = Advance(v5, 7, {1, 3}, 9.75);
  ReplicatedSnapshotStore store;
  ASSERT_TRUE(store.Install(v5));

  // Tampered target checksum: the splice succeeds mechanically but the
  // chain refuses to publish it.
  auto tampered = MakeDelta(v5, v7);
  tampered.result_checksum ^= 0x1;
  EXPECT_EQ(store.InstallDelta(tampered),
            ReplicatedSnapshotStore::DeltaResult::kChecksumMismatch);
  EXPECT_EQ(store.version(), 5u);
  ExpectSameFrames(*store.current(), v5);

  // A substituted row (right shape, wrong bytes) breaks the chain the
  // same way — the forged doubles never become servable.
  auto forged = MakeDelta(v5, v7);
  forged.rows[0].bytes = v5.rows[1];
  EXPECT_EQ(store.InstallDelta(forged),
            ReplicatedSnapshotStore::DeltaResult::kChecksumMismatch);
  EXPECT_EQ(store.version(), 5u);

  // A malformed row length cannot even reach the checksum.
  auto short_row = MakeDelta(v5, v7);
  short_row.rows[0].bytes.pop_back();
  EXPECT_EQ(store.InstallDelta(short_row),
            ReplicatedSnapshotStore::DeltaResult::kBaseMismatch);
  EXPECT_EQ(store.version(), 5u);
  EXPECT_EQ(store.install_count(), 1u);
}

// --- store ------------------------------------------------------------------

TEST(FederationStoreTest, InstallsAreMonotone) {
  ReplicatedSnapshotStore store;
  EXPECT_EQ(store.current(), nullptr);
  EXPECT_EQ(store.version(), 0u);

  SnapshotFrameSet v2;
  v2.version = 2;
  EXPECT_TRUE(store.Install(v2));
  EXPECT_EQ(store.version(), 2u);

  SnapshotFrameSet v1;
  v1.version = 1;
  EXPECT_FALSE(store.Install(v1));  // older: ignored
  EXPECT_EQ(store.version(), 2u);
  EXPECT_FALSE(store.Install(v2));  // duplicate: ignored
  EXPECT_EQ(store.version(), 2u);
  EXPECT_EQ(store.install_count(), 1u);
  EXPECT_EQ(store.stale_install_count(), 2u);

  // A reader holding the old frame set keeps it across a newer install.
  const auto held = store.current();
  SnapshotFrameSet v3;
  v3.version = 3;
  EXPECT_TRUE(store.Install(v3));
  EXPECT_EQ(held->version, 2u);
  EXPECT_EQ(store.version(), 3u);
}

// --- replica fixtures -------------------------------------------------------

class FederationTest : public ::testing::Test {
 protected:
  FederationTest()
      : graph_(net::MakeAbilene()), routing_(graph_), tracker_(graph_, routing_),
        service_(&tracker_, &policy_), follower_service_(&store_),
        follower_(&store_) {
    policy_.SetThresholds(core::UsageThresholds{0.7, 0.9});
  }

  /// Bumps the tracker's price version deterministically. Every link's
  /// price moves, so every p-distance row changes — full-push territory.
  void BumpVersion(int round) {
    std::vector<double> prices(graph_.link_count());
    for (std::size_t e = 0; e < prices.size(); ++e) {
      prices[e] = 1e-9 * (1.0 + static_cast<double>((round + 1) * (e + 1)));
    }
    tracker_.SetStaticPrices(prices);
  }

  /// Reprices exactly one directed link on an otherwise flat price map:
  /// only the rows routed across it change, so the publisher can ship a
  /// delta (the first call changes everything — bootstrap accordingly).
  void BumpOneLink(int round) {
    std::vector<double> prices(graph_.link_count(), 1e-9);
    prices[0] = 1e-9 * (2.0 + static_cast<double>(round));
    tracker_.SetStaticPrices(prices);
  }

  net::Graph graph_;
  net::RoutingTable routing_;
  core::ITracker tracker_;
  core::PolicyRegistry policy_;
  ITrackerService service_;
  ReplicatedSnapshotStore store_;
  FollowerPortalService follower_service_;
  SnapshotFollower follower_;
};

TEST_F(FederationTest, ExportFramesMatchesServedBytes) {
  BumpVersion(0);
  const auto frames = service_.ExportFrames();
  EXPECT_EQ(frames.version, tracker_.version());
  EXPECT_EQ(frames.num_pids, tracker_.num_pids());
  EXPECT_EQ(frames.external_view, service_.Handle(Encode(GetExternalViewReq{})));
  EXPECT_EQ(frames.rows.size(), static_cast<std::size_t>(tracker_.num_pids()));
  for (core::Pid i = 0; i < tracker_.num_pids(); ++i) {
    EXPECT_EQ(frames.rows[static_cast<std::size_t>(i)],
              service_.Handle(Encode(GetPDistancesReq{i})));
  }
  EXPECT_EQ(frames.not_modified,
            service_.Handle(Encode(GetExternalViewReq{frames.version})));
  EXPECT_EQ(frames.policy, service_.Handle(Encode(GetPolicyReq{})));
}

TEST_F(FederationTest, FollowerServesByteIdenticalFrames) {
  BumpVersion(0);
  ASSERT_TRUE(store_.Install(service_.ExportFrames()));
  const auto version = tracker_.version();

  // Every follower answer is byte-identical to the publisher's.
  for (const auto& request :
       {Encode(GetExternalViewReq{}), Encode(GetExternalViewReq{version}),
        Encode(GetPDistancesReq{3}), Encode(GetPDistancesReq{3, version}),
        Encode(GetPolicyReq{})}) {
    EXPECT_EQ(follower_service_.Handle(request), service_.Handle(request));
  }
  // Out-of-range PID errors identically.
  EXPECT_EQ(follower_service_.Handle(Encode(GetPDistancesReq{99})),
            service_.Handle(Encode(GetPDistancesReq{99})));

  // UDP validation answers are byte-identical as well (same nonce in, same
  // pre-encoded NotModifiedResp tail out).
  const auto datagram = EncodeValidationRequest(ValidationRequest{77, version});
  EXPECT_EQ(follower_service_.HandleValidationDatagram(datagram),
            service_.HandleValidationDatagram(datagram));
}

TEST_F(FederationTest, FollowerShedsBeforeFirstInstall) {
  const auto response = follower_service_.Handle(Encode(GetExternalViewReq{}));
  const auto decoded = Decode(response);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_NE(std::get_if<UnavailableResp>(&*decoded), nullptr);
  // Validation datagrams get silence, not a bogus version.
  EXPECT_EQ(follower_service_.HandleValidationDatagram(
                EncodeValidationRequest(ValidationRequest{1, 5})),
            std::nullopt);
}

TEST_F(FederationTest, PublishOncePushesAndCachesPerVersion) {
  SnapshotPublisher publisher(&service_);
  publisher.AddFollower("b.example", 1,
                        std::make_unique<InProcessTransport>(
                            follower_.replication_handler()));

  BumpVersion(0);
  EXPECT_EQ(publisher.PublishOnce(), 1u);
  EXPECT_EQ(store_.version(), tracker_.version());
  EXPECT_EQ(publisher.published_version(), tracker_.version());
  EXPECT_EQ(publisher.push_count(), 1u);

  // Republishing the same version pushes nothing.
  EXPECT_EQ(publisher.PublishOnce(), 1u);
  EXPECT_EQ(publisher.push_count(), 1u);

  BumpVersion(1);
  EXPECT_EQ(publisher.PublishOnce(), 1u);
  EXPECT_EQ(store_.version(), tracker_.version());
  EXPECT_EQ(publisher.push_count(), 2u);
  EXPECT_EQ(follower_.push_install_count(), 2u);
  EXPECT_EQ(publisher.push_failure_count(), 0u);
}

// --- content-version stamps (service side) ----------------------------------

TEST_F(FederationTest, NoOpBumpCarriesContentStampsForward) {
  BumpVersion(0);
  const auto first = service_.ExportFrames();
  EXPECT_EQ(first.version, tracker_.version());
  EXPECT_EQ(first.view_version, first.version);
  ASSERT_EQ(first.row_versions.size(), first.rows.size());
  for (const auto rv : first.row_versions) EXPECT_EQ(rv, first.version);

  // Background traffic does not enter p-distances: the bump burns a
  // version but no row's bytes change, so every content stamp carries.
  std::vector<double> background(graph_.link_count(), 1e6);
  tracker_.set_background_bps(background);
  const auto second = service_.ExportFrames();
  EXPECT_EQ(second.version, first.version + 1);
  EXPECT_EQ(second.view_version, first.version);
  EXPECT_EQ(second.external_view, first.external_view);
  EXPECT_EQ(second.rows, first.rows);
  EXPECT_EQ(second.row_versions, first.row_versions);
  EXPECT_NE(second.not_modified, first.not_modified);  // tracks the version

  // Conditional serving honors content-version tokens across the no-op
  // bump: a client holding the pre-bump view is told NotModified, not
  // re-sent an identical matrix with a fresher stamp.
  for (const auto& request :
       {Encode(GetExternalViewReq{first.version}),
        Encode(GetExternalViewReq{second.version}),
        Encode(GetPDistancesReq{3, first.version}),
        Encode(GetPDistancesReq{3, second.version})}) {
    const auto decoded = Decode(service_.Handle(request));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_NE(std::get_if<NotModifiedResp>(&*decoded), nullptr);
  }
  // The UDP validation fast path stays strict current-version-only (its
  // caching client pins the exact version, see caching_client.cc).
  const auto datagram = service_.HandleValidationDatagram(
      EncodeValidationRequest(ValidationRequest{1, first.version}));
  ASSERT_TRUE(datagram.has_value());
  const auto validation = DecodeValidationResponse(*datagram);
  ASSERT_TRUE(validation.has_value());
  EXPECT_EQ(validation->status, ValidationStatus::kRevalidateOverTcp);
}

TEST_F(FederationTest, PartialRepriceStampsOnlyTouchedRows) {
  BumpVersion(0);
  const auto first = service_.ExportFrames();

  // Reprice exactly one directed link: only the rows whose routed paths
  // cross it change. The rest keep their v1 bytes and stamps — the delta
  // workload this PR exists for.
  std::vector<double> prices(graph_.link_count());
  for (std::size_t e = 0; e < prices.size(); ++e) {
    prices[e] = 1e-9 * (1.0 + static_cast<double>(e + 1));  // BumpVersion(0)
  }
  prices[0] *= 3.0;
  tracker_.SetStaticPrices(prices);
  const auto second = service_.ExportFrames();
  EXPECT_EQ(second.version, first.version + 1);
  EXPECT_EQ(second.view_version, second.version);  // a row changed => view did

  std::size_t changed = 0;
  for (std::size_t i = 0; i < second.rows.size(); ++i) {
    if (second.row_versions[i] == second.version) {
      ++changed;
      EXPECT_NE(second.rows[i], first.rows[i]);
    } else {
      EXPECT_EQ(second.row_versions[i], first.version);
      EXPECT_EQ(second.rows[i], first.rows[i]);
      // An unchanged row's old token still earns NotModified now.
      const auto decoded = Decode(service_.Handle(
          Encode(GetPDistancesReq{static_cast<core::Pid>(i), first.version})));
      ASSERT_TRUE(decoded.has_value());
      EXPECT_NE(std::get_if<NotModifiedResp>(&*decoded), nullptr);
    }
  }
  EXPECT_GT(changed, 0u);
  EXPECT_LT(changed, second.rows.size());
}

// --- publisher delta path ---------------------------------------------------

TEST_F(FederationTest, PublishOnceShipsDeltasToAckedFollowers) {
  SnapshotPublisher publisher(&service_);
  publisher.AddFollower("b.example", 1,
                        std::make_unique<InProcessTransport>(
                            follower_.replication_handler()));

  // Bootstrap: no acked base exists, so the first push is the full set.
  BumpOneLink(0);
  EXPECT_EQ(publisher.PublishOnce(), 1u);
  EXPECT_EQ(publisher.full_frames_sent(), 1u);
  EXPECT_EQ(publisher.delta_frames_sent(), 0u);

  // From then on every version rides a delta, and the installed result is
  // byte-identical to the publisher's own frames.
  BumpOneLink(1);
  EXPECT_EQ(publisher.PublishOnce(), 1u);
  EXPECT_EQ(publisher.delta_frames_sent(), 1u);
  EXPECT_EQ(publisher.full_frames_sent(), 1u);
  EXPECT_EQ(follower_.delta_install_count(), 1u);
  EXPECT_EQ(store_.version(), tracker_.version());
  const auto frames = service_.ExportFrames();
  EXPECT_EQ(FrameSetChecksum(*store_.current()), FrameSetChecksum(frames));
  EXPECT_EQ(store_.current()->external_view, frames.external_view);
  EXPECT_EQ(store_.current()->rows, frames.rows);

  // Deltas are strictly smaller than the full frames they replace.
  EXPECT_LT(publisher.delta_bytes_sent(), publisher.full_bytes_sent());

  // A delta-disabled publisher (the conformance oracle) never sends one.
  PublisherOptions full_only;
  full_only.enable_delta = false;
  ReplicatedSnapshotStore oracle_store;
  SnapshotFollower oracle_follower(&oracle_store);
  SnapshotPublisher oracle(&service_, full_only);
  oracle.AddFollower("c.example", 2,
                     std::make_unique<InProcessTransport>(
                         oracle_follower.replication_handler()));
  EXPECT_EQ(oracle.PublishOnce(), 1u);
  BumpOneLink(2);
  EXPECT_EQ(oracle.PublishOnce(), 1u);
  EXPECT_EQ(oracle.delta_frames_sent(), 0u);
  EXPECT_EQ(oracle.full_frames_sent(), 2u);
}

TEST_F(FederationTest, NeedFullSetAckTriggersSameRoundFullRetry) {
  SnapshotPublisher publisher(&service_);
  publisher.AddFollower("b.example", 1,
                        std::make_unique<InProcessTransport>(
                            follower_.replication_handler()));
  BumpOneLink(0);
  ASSERT_EQ(publisher.PublishOnce(), 1u);  // acked base: v1

  // The follower quietly advances past the publisher's book-keeping (a
  // direct pull the publisher never saw), so the next delta is computed
  // against a base the follower no longer holds.
  BumpOneLink(1);
  InProcessTransport to_publisher(publisher.replication_handler());
  ASSERT_TRUE(follower_.PullOnce(to_publisher));
  ASSERT_EQ(store_.version(), tracker_.version());

  BumpOneLink(2);
  EXPECT_EQ(publisher.PublishOnce(), 1u);  // recovered within the round
  EXPECT_EQ(store_.version(), tracker_.version());
  EXPECT_EQ(publisher.delta_fallback_count(), 1u);
  EXPECT_EQ(follower_.delta_fallback_count(), 1u);
  const auto frames = service_.ExportFrames();
  EXPECT_EQ(store_.current()->external_view, frames.external_view);

  // The fallback is sticky only until an ack: the next publish goes back
  // to the delta path.
  BumpOneLink(3);
  const auto deltas_before = publisher.delta_frames_sent();
  EXPECT_EQ(publisher.PublishOnce(), 1u);
  EXPECT_EQ(publisher.delta_frames_sent(), deltas_before + 1);
  EXPECT_EQ(follower_.delta_install_count(), 1u + 1u);
}

TEST_F(FederationTest, ReplicationEndpointAcksDeltaOutcomes) {
  BumpOneLink(0);
  const auto v1 = service_.ExportFrames();
  BumpOneLink(1);
  const auto v2 = service_.ExportFrames();

  // Build the delta the publisher would ship for 1 -> 2.
  DeltaPush delta;
  delta.base_version = v1.version;
  delta.version = v2.version;
  delta.view_version = v2.view_version;
  delta.num_pids = v2.num_pids;
  delta.not_modified = v2.not_modified;
  delta.policy = v2.policy;
  delta.result_checksum = FrameSetChecksum(v2);
  for (std::size_t i = 0; i < v2.rows.size(); ++i) {
    if (v2.row_versions[i] > v1.version) {
      delta.rows.push_back(DeltaRow{static_cast<std::int32_t>(i),
                                    v2.row_versions[i], v2.rows[i]});
    }
  }
  const auto delta_bytes = EncodeDeltaPush(delta);

  // Against an empty store: kNeedFullSet (no base), store untouched.
  const auto no_base = DecodeFrameAck(follower_.HandleReplication(delta_bytes));
  ASSERT_TRUE(no_base.has_value());
  EXPECT_EQ(no_base->status, AckStatus::kNeedFullSet);
  EXPECT_EQ(store_.version(), 0u);

  // With the base installed: kInstalled.
  ASSERT_TRUE(store_.Install(v1));
  const auto installed = DecodeFrameAck(follower_.HandleReplication(delta_bytes));
  ASSERT_TRUE(installed.has_value());
  EXPECT_EQ(installed->status, AckStatus::kInstalled);
  EXPECT_EQ(installed->version, v2.version);
  EXPECT_EQ(store_.current()->external_view, v2.external_view);

  // Re-delivered (duplicate) delta: kAlreadyCurrent, no rollback.
  const auto duplicate = DecodeFrameAck(follower_.HandleReplication(delta_bytes));
  ASSERT_TRUE(duplicate.has_value());
  EXPECT_EQ(duplicate->status, AckStatus::kAlreadyCurrent);
  EXPECT_EQ(store_.version(), v2.version);
  EXPECT_EQ(follower_.delta_stale_count(), 1u);

  // Corrupt delta frames get kRejected — never silence, never a crash.
  auto corrupt = delta_bytes;
  corrupt[corrupt.size() / 2] ^= 0x04;
  const auto rejected = DecodeFrameAck(follower_.HandleReplication(corrupt));
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->status, AckStatus::kRejected);
  EXPECT_EQ(store_.version(), v2.version);
  EXPECT_EQ(follower_.push_rejected_count(), 1u);
}

TEST_F(FederationTest, PullsAreAnsweredWithDeltasWhenPossible) {
  SnapshotPublisher publisher(&service_);
  BumpOneLink(0);  // restamps every row (prices leave the constructor's map)
  const auto base_version = tracker_.version();
  // Content stamps are diff-based, so the service must see the base
  // version before the next bump for the head's stamps to stay partial.
  ASSERT_EQ(service_.ExportFrames().version, base_version);
  BumpOneLink(1);  // restamps only the rows routed across link 0
  const auto head_version = tracker_.version();

  // A puller at the base gets a delta; want_full forces the full frame
  // set; a current puller gets kAlreadyCurrent either way.
  const auto delta_answer = publisher.HandleReplication(
      EncodeFramePull(FramePull{base_version, 0, false}));
  EXPECT_EQ(PeekFederationTag(delta_answer), FederationTag::kDeltaPush);
  const auto full_answer = publisher.HandleReplication(
      EncodeFramePull(FramePull{base_version, 0, true}));
  EXPECT_EQ(PeekFederationTag(full_answer), FederationTag::kFramePush);
  const auto current_answer = publisher.HandleReplication(
      EncodeFramePull(FramePull{head_version, 0, false}));
  const auto ack = DecodeFrameAck(current_answer);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->status, AckStatus::kAlreadyCurrent);
  // A brand-new puller (version 0) can only be served the full set.
  EXPECT_EQ(PeekFederationTag(
                publisher.HandleReplication(EncodeFramePull(FramePull{0, 0, false}))),
            FederationTag::kFramePush);

  // PullOnce rides the delta path end to end: install the current full
  // set, advance one link, and the follow-up pull travels as a delta.
  ASSERT_TRUE(DecodeFramePush(full_answer).has_value());
  ASSERT_TRUE(store_.Install(*DecodeFramePush(
      publisher.HandleReplication(EncodeFramePull(FramePull{0, 0, true})))));
  BumpOneLink(2);
  InProcessTransport to_publisher(publisher.replication_handler());
  ASSERT_TRUE(follower_.PullOnce(to_publisher));
  EXPECT_EQ(store_.version(), tracker_.version());
  EXPECT_EQ(follower_.delta_install_count(), 1u);
  EXPECT_EQ(follower_.pull_install_count(), 1u);
  const auto frames = service_.ExportFrames();
  EXPECT_EQ(store_.current()->external_view, frames.external_view);
  EXPECT_EQ(store_.current()->rows, frames.rows);
}

TEST_F(FederationTest, VersionListenerFiresOnEveryMutator) {
  std::vector<std::uint64_t> seen;
  tracker_.RegisterVersionListener([&seen](std::uint64_t v) { seen.push_back(v); });

  tracker_.SetUniformPrices();
  tracker_.SetPricesFromOspf();
  BumpVersion(0);  // SetStaticPrices
  std::vector<double> background(graph_.link_count(), 1e6);
  tracker_.set_background_bps(background);
  std::vector<double> p4p(graph_.link_count(), 5e5);
  tracker_.Update(p4p);

  ASSERT_EQ(seen.size(), 5u);
  for (std::size_t i = 1; i < seen.size(); ++i) EXPECT_GT(seen[i], seen[i - 1]);
  EXPECT_EQ(seen.back(), tracker_.version());
}

TEST_F(FederationTest, BeaconGapDetectionTriggersPull) {
  SnapshotPublisher publisher(&service_);
  BumpVersion(0);
  // No push channel: the follower only hears the beacon.
  EXPECT_FALSE(follower_.behind());
  EXPECT_EQ(follower_.HandleBeacon(publisher.BeaconFrame()), std::nullopt);
  EXPECT_TRUE(follower_.behind());
  EXPECT_EQ(follower_.beacon_version(), tracker_.version());

  InProcessTransport to_publisher(publisher.replication_handler());
  EXPECT_TRUE(follower_.PullOnce(to_publisher));
  EXPECT_EQ(store_.version(), tracker_.version());
  EXPECT_FALSE(follower_.behind());
  EXPECT_EQ(publisher.pull_served_count(), 1u);

  // Already current: the next pull is answered kAlreadyCurrent.
  EXPECT_FALSE(follower_.PullOnce(to_publisher));
  EXPECT_EQ(follower_.pull_install_count(), 1u);

  // A stale (reordered) beacon never shrinks the known horizon.
  follower_.HandleBeacon(EncodeBeacon(0, 1));
  EXPECT_EQ(follower_.beacon_version(), tracker_.version());
  // Corrupt beacons are dropped by checksum.
  auto corrupt = publisher.BeaconFrame();
  corrupt[8] ^= 0x01;
  follower_.HandleBeacon(corrupt);
  EXPECT_EQ(follower_.beacon_version(), tracker_.version());
}

// A request/response channel that drops (throws) or corrupts frames with
// seeded randomness — the TCP-push analogue of FaultyDatagramLink.
class LossyFrameChannel final : public Transport {
 public:
  LossyFrameChannel(Handler backend, double drop_rate, double corrupt_rate,
                    std::uint64_t seed)
      : backend_(std::move(backend)), drop_rate_(drop_rate),
        corrupt_rate_(corrupt_rate), rng_(seed) {}

  std::vector<std::uint8_t> Call(std::span<const std::uint8_t> request) override {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    if (u(rng_) < drop_rate_) throw std::runtime_error("request lost");
    std::vector<std::uint8_t> delivered(request.begin(), request.end());
    if (!delivered.empty() && u(rng_) < corrupt_rate_) FlipBit(delivered);
    auto response = backend_(delivered);
    if (u(rng_) < drop_rate_) throw std::runtime_error("response lost");
    if (!response.empty() && u(rng_) < corrupt_rate_) FlipBit(response);
    return response;
  }

 private:
  void FlipBit(std::vector<std::uint8_t>& bytes) {
    std::uniform_int_distribution<std::size_t> pick(0, bytes.size() * 8 - 1);
    const std::size_t bit = pick(rng_);
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }

  Handler backend_;
  double drop_rate_;
  double corrupt_rate_;
  std::mt19937_64 rng_;
};

TEST_F(FederationTest, LossyReplicationConvergesWithInvariants) {
  // Fresh replica state per run lives in the fixture; this test drives one
  // lossy scenario and checks the safety invariants every round.
  SnapshotPublisher publisher(&service_);
  publisher.AddFollower(
      "b.example", 1,
      std::make_unique<LossyFrameChannel>(follower_.replication_handler(),
                                          /*drop_rate=*/0.3, /*corrupt_rate=*/0.3,
                                          /*seed=*/0xBADBEEF));
  InProcessTransport pull_channel(publisher.replication_handler());

  std::mt19937_64 beacon_rng(0xB34C04);
  testsupport::FaultProfile beacon_faults;
  beacon_faults.drop_rate = 0.3;
  beacon_faults.reorder_rate = 0.3;
  beacon_faults.corrupt_rate = 0.2;
  beacon_faults.delay_rate = 0.3;
  testsupport::FaultyDatagramLink beacon_link(beacon_faults, &beacon_rng);

  std::uint64_t last_served_version = 0;
  for (int round = 0; round < 40; ++round) {
    BumpVersion(round);
    publisher.PublishOnce();
    beacon_link.Push(publisher.BeaconFrame());
    beacon_link.Tick();
    while (auto datagram = beacon_link.Pop()) follower_.HandleBeacon(*datagram);
    if (follower_.behind()) {
      try {
        follower_.PullOnce(pull_channel);
      } catch (const std::exception&) {
      }
    }

    // Invariant: whatever the follower serves is a complete frame set of
    // one published version — never a version it holds no frames for,
    // never a mix, never a rollback.
    const auto frames = store_.current();
    const auto response = follower_service_.Handle(Encode(GetExternalViewReq{}));
    if (!frames) {
      const auto decoded = Decode(response);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_NE(std::get_if<UnavailableResp>(&*decoded), nullptr);
      continue;
    }
    EXPECT_EQ(response, frames->external_view);
    const auto decoded = Decode(response);
    ASSERT_TRUE(decoded.has_value());
    const auto* view = std::get_if<GetExternalViewResp>(&*decoded);
    ASSERT_NE(view, nullptr);
    EXPECT_EQ(view->version, frames->version);
    EXPECT_LE(view->version, tracker_.version());
    EXPECT_GE(view->version, last_served_version);  // monotone
    last_served_version = view->version;
  }

  // Corruption was detected, never installed: rejects happened, yet every
  // installed frame set decoded cleanly (Install only sees decoded frames).
  EXPECT_GT(follower_.push_rejected_count() + follower_.push_install_count(), 0u);

  // Anti-entropy closes the gap once the link heals.
  while (store_.version() < tracker_.version()) {
    follower_.PullOnce(pull_channel);
  }
  EXPECT_EQ(store_.version(), tracker_.version());
  EXPECT_EQ(follower_service_.Handle(Encode(GetExternalViewReq{})),
            service_.Handle(Encode(GetExternalViewReq{})));
}

TEST(FederationReplayTest, LossySameSeedReplayIsBitIdentical) {
  // The whole lossy scenario — fault decisions, installs, served bytes — is
  // a pure function of the seed. Two runs must match bit for bit.
  const auto run = [](std::uint64_t seed) {
    net::Graph graph = net::MakeAbilene();
    net::RoutingTable routing(graph);
    core::ITracker tracker(graph, routing);
    ITrackerService service(&tracker);
    ReplicatedSnapshotStore store;
    FollowerPortalService follower_service(&store);
    SnapshotFollower follower(&store);
    SnapshotPublisher publisher(&service);
    publisher.AddFollower(
        "b.example", 1,
        std::make_unique<LossyFrameChannel>(follower.replication_handler(), 0.35,
                                            0.35, seed));

    std::vector<std::uint64_t> versions;
    std::vector<std::uint8_t> served;
    for (int round = 0; round < 30; ++round) {
      std::vector<double> prices(graph.link_count());
      for (std::size_t e = 0; e < prices.size(); ++e) {
        prices[e] = 1e-9 * static_cast<double>((round + 1) + 3 * e);
      }
      tracker.SetStaticPrices(prices);
      publisher.PublishOnce();
      versions.push_back(store.version());
      const auto response = follower_service.Handle(Encode(GetExternalViewReq{}));
      served.insert(served.end(), response.begin(), response.end());
    }
    return std::make_pair(versions, served);
  };

  const auto first = run(0x5EED);
  const auto second = run(0x5EED);
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  // A different seed takes a different lossy path (sanity that the faults
  // actually bite).
  const auto other = run(0xD1FF);
  EXPECT_NE(first.first, other.first);
}

TEST_F(FederationTest, DirectoryEpochsSteerClientsAwayFromLaggards) {
  PortalDirectory directory;
  directory.AddRecord("isp.example", SrvRecord{"fresh.example", 7001, 0, 1});
  directory.AddRecord("isp.example", SrvRecord{"laggard.example", 7002, 0, 1});
  directory.UpdateVersionEpoch("isp.example", "fresh.example", 7001, 5);
  directory.UpdateVersionEpoch("isp.example", "laggard.example", 7002, 2);
  EXPECT_EQ(directory.version_epoch("isp.example", "fresh.example", 7001), 5u);
  EXPECT_EQ(directory.max_version_epoch("isp.example"), 5u);
  // Epochs are monotone: an out-of-order (older) ack cannot regress one.
  EXPECT_EQ(directory.UpdateVersionEpoch("isp.example", "fresh.example", 7001, 3), 0u);
  EXPECT_EQ(directory.version_epoch("isp.example", "fresh.example", 7001), 5u);
  // Unknown endpoints are not invented.
  EXPECT_EQ(directory.UpdateVersionEpoch("isp.example", "ghost.example", 9, 9), 0u);

  // With prefer_fresh_replicas, the fresh replica is tried first on every
  // call, regardless of where the SRV weighted shuffle puts it.
  std::atomic<int> fresh_calls{0};
  std::atomic<int> laggard_calls{0};
  ResilientClientOptions options;
  options.prefer_fresh_replicas = true;
  ResilientPortalClient client(
      &directory, "isp.example",
      [&](const SrvRecord& record) -> std::unique_ptr<Transport> {
        auto& counter = record.target == "fresh.example" ? fresh_calls : laggard_calls;
        return std::make_unique<InProcessTransport>(
            [&counter](std::span<const std::uint8_t>) {
              ++counter;
              return Encode(NotModifiedResp{5});
            });
      },
      options);

  for (int i = 0; i < 20; ++i) {
    client.Call(Encode(GetExternalViewReq{5}));
  }
  EXPECT_EQ(fresh_calls.load(), 20);
  EXPECT_EQ(laggard_calls.load(), 0);
  EXPECT_EQ(client.laggard_demotion_count(), 20u);
}

TEST_F(FederationTest, ElectPublisherIsDeterministic) {
  PortalDirectory directory;
  EXPECT_EQ(ElectPublisher(directory, "isp.example"), std::nullopt);
  directory.AddRecord("isp.example", SrvRecord{"c.example", 7003, 1, 9});
  directory.AddRecord("isp.example", SrvRecord{"b.example", 7002, 0, 1});
  directory.AddRecord("isp.example", SrvRecord{"a.example", 7001, 0, 100});

  // Lowest priority wins; the weight never matters for election. Ties break
  // on (target, port) so every replica elects the same publisher.
  const auto elected = ElectPublisher(directory, "isp.example");
  ASSERT_TRUE(elected.has_value());
  EXPECT_EQ(elected->target, "a.example");
  EXPECT_EQ(elected->port, 7001);

  directory.AddRecord("isp.example", SrvRecord{"a.example", 7000, 0, 1});
  EXPECT_EQ(ElectPublisher(directory, "isp.example")->port, 7000);
}

// --- end-to-end failover over real sockets ----------------------------------

TEST(FederationFailoverTest, VersionTokenStaysValidAcrossReplicaFailover) {
  net::Graph graph = net::MakeAbilene();
  net::RoutingTable routing(graph);
  core::ITracker tracker(graph, routing);
  ITrackerService service(&tracker);

  ReplicatedSnapshotStore store;
  FollowerPortalService follower_service(&store);
  SnapshotFollower follower(&store);

  // Replica A: the publisher's portal. Replica B: a follower portal plus
  // its replication endpoint, all on real sockets.
  auto server_a = std::make_unique<TcpServer>(0, service.shared_handler(), 1);
  TcpServer server_b(0, follower_service.shared_handler(), 1);
  TcpServer replication_b(0, [&follower](std::span<const std::uint8_t> req) {
    return follower.HandleReplication(req);
  });

  PortalDirectory directory;
  directory.AddRecord("isp.example",
                      SrvRecord{"a.example", server_a->port(), 0, 1});
  directory.AddRecord("isp.example", SrvRecord{"b.example", server_b.port(), 1, 1});

  PublisherOptions pub_options;
  pub_options.directory = &directory;
  pub_options.domain = "isp.example";
  pub_options.self_target = "a.example";
  pub_options.self_port = server_a->port();
  SnapshotPublisher publisher(&service, pub_options);
  publisher.AddFollower("b.example", server_b.port(),
                        std::make_unique<TcpClient>(replication_b.port()));

  std::vector<double> prices(graph.link_count(), 2e-9);
  tracker.SetStaticPrices(prices);
  ASSERT_EQ(publisher.PublishOnce(), 1u);
  ASSERT_EQ(store.version(), tracker.version());
  EXPECT_EQ(directory.version_epoch("isp.example", "b.example", server_b.port()),
            tracker.version());
  EXPECT_EQ(directory.max_version_epoch("isp.example"), tracker.version());

  // All replicas serve behind one failover transport (every connection goes
  // to the live SRV-preferred replica).
  ResilientClientOptions options;
  options.prefer_fresh_replicas = true;
  auto resilient = std::make_unique<ResilientPortalClient>(
      &directory, "isp.example",
      [](const SrvRecord& record) -> std::unique_ptr<Transport> {
        return std::make_unique<TcpClient>(record.port);
      },
      options);
  auto* resilient_raw = resilient.get();
  PortalClient client(std::move(resilient));

  // Fetch from replica A (priority 0) and hold its version token.
  const auto [view, version] = client.GetExternalViewWithVersion();
  ASSERT_EQ(version, tracker.version());

  // Kill the publisher. The token must stay valid: replica B answers the
  // conditional fetch with NotModified from the replicated frames.
  server_a.reset();
  const auto refreshed = client.GetExternalViewIfModified(version);
  EXPECT_FALSE(refreshed.has_value()) << "follower re-sent the matrix";
  EXPECT_GE(resilient_raw->failover_count(), 1u);

  // And a full fetch from B returns the same view bytes version-for-version.
  const auto [view_b, version_b] = client.GetExternalViewWithVersion();
  EXPECT_EQ(version_b, version);
  EXPECT_EQ(view_b.values().size(), view.values().size());
  for (std::size_t i = 0; i < view.values().size(); ++i) {
    EXPECT_EQ(view.values()[i], view_b.values()[i]);
  }
}

// --- publisher-republish vs follower-serve hammer (TSan target) -------------

TEST(FederationConcurrencyTest, RepublishVsServeHammer) {
  net::Graph graph = net::MakeAbilene();
  net::RoutingTable routing(graph);
  core::ITracker tracker(graph, routing);
  ITrackerService service(&tracker);
  ReplicatedSnapshotStore store;
  FollowerPortalService follower_service(&store);
  SnapshotFollower follower(&store);
  SnapshotPublisher publisher(&service);
  publisher.AddFollower("b.example", 1,
                        std::make_unique<InProcessTransport>(
                            follower.replication_handler()));

  // The republish trigger under test: every version bump publishes.
  tracker.RegisterVersionListener([&publisher](std::uint64_t) {
    publisher.PublishOnce();
  });

  constexpr int kMutations = 300;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> served{0};

  // 1 mutator/publisher thread + 1 beacon thread + 1 pull thread + 5
  // serve threads = 8 threads hammering the shared store.
  std::thread mutator([&] {
    std::vector<double> prices(graph.link_count());
    for (int round = 0; round < kMutations; ++round) {
      for (std::size_t e = 0; e < prices.size(); ++e) {
        prices[e] = 1e-9 * static_cast<double>((round + 1) + e);
      }
      tracker.SetStaticPrices(prices);
    }
    done.store(true);
  });

  std::thread beaconer([&] {
    while (!done.load()) follower.HandleBeacon(publisher.BeaconFrame());
  });

  std::thread puller([&] {
    InProcessTransport to_publisher(publisher.replication_handler());
    while (!done.load()) {
      if (follower.behind()) follower.PullOnce(to_publisher);
    }
  });

  std::vector<std::thread> servers;
  for (int t = 0; t < 5; ++t) {
    servers.emplace_back([&, t] {
      std::uint64_t last_version = 0;
      const auto view_req = Encode(GetExternalViewReq{});
      while (!done.load()) {
        const auto response = follower_service.HandleShared(view_req);
        const auto decoded = Decode(*response);
        ASSERT_TRUE(decoded.has_value());
        if (const auto* view = std::get_if<GetExternalViewResp>(&*decoded)) {
          ASSERT_GE(view->version, last_version);  // never a rollback
          last_version = view->version;
          // Conditional re-ask with the version just seen must yield
          // NotModified for that version or a newer full view.
          const auto conditional =
              Decode(follower_service.Handle(Encode(GetExternalViewReq{view->version})));
          ASSERT_TRUE(conditional.has_value());
          if (const auto* nm = std::get_if<NotModifiedResp>(&*conditional)) {
            ASSERT_EQ(nm->version, view->version);
          } else {
            const auto* newer = std::get_if<GetExternalViewResp>(&*conditional);
            ASSERT_NE(newer, nullptr);
            ASSERT_GT(newer->version, view->version);
          }
          // Row and validation answers come from one coherent frame set.
          const auto row = Decode(follower_service.Handle(
              Encode(GetPDistancesReq{static_cast<core::Pid>(t)})));
          ASSERT_TRUE(row.has_value());
          follower_service.HandleValidationDatagram(
              EncodeValidationRequest(ValidationRequest{served.load(), view->version}));
          served.fetch_add(1);
        } else {
          // Before the first install only UnavailableResp is acceptable.
          ASSERT_NE(std::get_if<UnavailableResp>(&*decoded), nullptr);
        }
      }
    });
  }

  mutator.join();
  beaconer.join();
  puller.join();
  for (auto& t : servers) t.join();

  // Convergence: one final publish round settles the follower at the last
  // version.
  publisher.PublishOnce();
  InProcessTransport to_publisher(publisher.replication_handler());
  follower.PullOnce(to_publisher);
  EXPECT_EQ(store.version(), tracker.version());
  EXPECT_GT(served.load(), 0u);
  EXPECT_EQ(follower_service.Handle(Encode(GetExternalViewReq{})),
            service.Handle(Encode(GetExternalViewReq{})));
}

}  // namespace
}  // namespace p4p::proto

#include "proto/messages.h"

#include <gtest/gtest.h>

#include <random>

namespace p4p::proto {
namespace {

template <typename T>
T RoundTrip(const T& msg) {
  const auto bytes = Encode(msg);
  const auto decoded = Decode(bytes);
  EXPECT_TRUE(decoded.has_value());
  const T* out = std::get_if<T>(&*decoded);
  EXPECT_NE(out, nullptr);
  return *out;
}

TEST(Messages, ErrorRoundTrip) {
  const auto out = RoundTrip(ErrorMsg{"something broke"});
  EXPECT_EQ(out.message, "something broke");
}

TEST(Messages, GetPDistancesReqRoundTrip) {
  const auto out = RoundTrip(GetPDistancesReq{17});
  EXPECT_EQ(out.from, 17);
  EXPECT_EQ(out.if_version, 0u);
}

TEST(Messages, ConditionalRequestsCarryVersionToken) {
  const auto row = RoundTrip(GetPDistancesReq{4, 77u});
  EXPECT_EQ(row.from, 4);
  EXPECT_EQ(row.if_version, 77u);
  const auto view = RoundTrip(GetExternalViewReq{123456789u});
  EXPECT_EQ(view.if_version, 123456789u);
}

TEST(Messages, PreTokenRequestsStillDecode) {
  // Requests encoded before the if_version field existed (no trailing u64)
  // must decode as unconditional.
  const std::vector<std::uint8_t> old_view = {kProtocolVersion,
                                              static_cast<std::uint8_t>(
                                                  MsgType::kGetExternalViewReq)};
  const auto view = Decode(old_view);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(std::get<GetExternalViewReq>(*view).if_version, 0u);

  std::vector<std::uint8_t> old_row = {kProtocolVersion,
                                       static_cast<std::uint8_t>(
                                           MsgType::kGetPDistancesReq),
                                       0, 0, 0, 9};
  const auto row = Decode(old_row);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(std::get<GetPDistancesReq>(*row).from, 9);
  EXPECT_EQ(std::get<GetPDistancesReq>(*row).if_version, 0u);
}

TEST(Messages, NotModifiedRoundTrip) {
  const auto out = RoundTrip(NotModifiedResp{42u});
  EXPECT_EQ(out.version, 42u);
  // The whole point: the encoded answer is tiny (frame header aside).
  EXPECT_LE(Encode(NotModifiedResp{42u}).size(), 16u);
}

TEST(Messages, NotModifiedRejectsTruncation) {
  auto bytes = Encode(NotModifiedResp{42u});
  bytes.pop_back();
  EXPECT_FALSE(Decode(bytes).has_value());
}

TEST(Messages, GetPDistancesRespRoundTrip) {
  GetPDistancesResp msg;
  msg.from = 3;
  msg.version = 987654321012345ULL;
  msg.distances = {0.0, 1.5, 2.25, 1e-12};
  const auto out = RoundTrip(msg);
  EXPECT_EQ(out.from, 3);
  EXPECT_EQ(out.version, 987654321012345ULL);
  EXPECT_EQ(out.distances, msg.distances);
}

TEST(Messages, ExternalViewRoundTrip) {
  GetExternalViewResp msg;
  msg.num_pids = 2;
  msg.version = 5;
  msg.distances = {0.0, 1.0, 2.0, 0.0};
  const auto out = RoundTrip(msg);
  EXPECT_EQ(out.num_pids, 2);
  EXPECT_EQ(out.distances, msg.distances);
}

TEST(Messages, ExternalViewRejectsMismatchedSize) {
  GetExternalViewResp msg;
  msg.num_pids = 3;
  msg.distances = {1.0, 2.0};  // should be 9
  const auto bytes = Encode(msg);
  EXPECT_FALSE(Decode(bytes).has_value());
}

TEST(Messages, PolicyRoundTrip) {
  GetPolicyResp msg;
  msg.thresholds = {0.65, 0.85};
  msg.time_of_day.push_back({4, 18, 23, 0.5});
  msg.time_of_day.push_back({7, 22, 6, 0.3});
  const auto out = RoundTrip(msg);
  EXPECT_DOUBLE_EQ(out.thresholds.near_congestion_utilization, 0.65);
  ASSERT_EQ(out.time_of_day.size(), 2u);
  EXPECT_EQ(out.time_of_day[1].link, 7);
  EXPECT_EQ(out.time_of_day[1].start_hour, 22);
  EXPECT_EQ(out.time_of_day[1].end_hour, 6);
  EXPECT_DOUBLE_EQ(out.time_of_day[1].max_utilization, 0.3);
}

TEST(Messages, CapabilityRoundTrip) {
  GetCapabilityReq req;
  req.type = core::CapabilityType::kOnDemandServer;
  req.content_id = "movie-42";
  const auto rout = RoundTrip(req);
  EXPECT_EQ(rout.type, core::CapabilityType::kOnDemandServer);
  EXPECT_EQ(rout.content_id, "movie-42");

  GetCapabilityResp resp;
  resp.capabilities.push_back({core::CapabilityType::kCache, 9, 1e9, "edge"});
  const auto out = RoundTrip(resp);
  ASSERT_EQ(out.capabilities.size(), 1u);
  EXPECT_EQ(out.capabilities[0].pid, 9);
  EXPECT_EQ(out.capabilities[0].description, "edge");
}

TEST(Messages, PidMapRoundTrip) {
  const auto req = RoundTrip(GetPidMapReq{"10.1.2.3"});
  EXPECT_EQ(req.client_ip, "10.1.2.3");
  GetPidMapResp resp;
  resp.found = true;
  resp.pid = 6;
  resp.as_number = 4711;
  const auto out = RoundTrip(resp);
  EXPECT_TRUE(out.found);
  EXPECT_EQ(out.pid, 6);
  EXPECT_EQ(out.as_number, 4711);
}

TEST(Messages, EmptyRequestsRoundTrip) {
  RoundTrip(GetExternalViewReq{});
  RoundTrip(GetPolicyReq{});
}

TEST(Messages, TypeOfCoversAll) {
  EXPECT_EQ(TypeOf(ErrorMsg{}), MsgType::kError);
  EXPECT_EQ(TypeOf(GetPDistancesReq{}), MsgType::kGetPDistancesReq);
  EXPECT_EQ(TypeOf(GetPDistancesResp{}), MsgType::kGetPDistancesResp);
  EXPECT_EQ(TypeOf(GetExternalViewReq{}), MsgType::kGetExternalViewReq);
  EXPECT_EQ(TypeOf(GetExternalViewResp{}), MsgType::kGetExternalViewResp);
  EXPECT_EQ(TypeOf(GetPolicyReq{}), MsgType::kGetPolicyReq);
  EXPECT_EQ(TypeOf(GetPolicyResp{}), MsgType::kGetPolicyResp);
  EXPECT_EQ(TypeOf(GetCapabilityReq{}), MsgType::kGetCapabilityReq);
  EXPECT_EQ(TypeOf(GetCapabilityResp{}), MsgType::kGetCapabilityResp);
  EXPECT_EQ(TypeOf(GetPidMapReq{}), MsgType::kGetPidMapReq);
  EXPECT_EQ(TypeOf(GetPidMapResp{}), MsgType::kGetPidMapResp);
}

TEST(Messages, RejectsUnknownType) {
  std::vector<std::uint8_t> bytes = {kProtocolVersion, 0xFF};
  EXPECT_FALSE(Decode(bytes).has_value());
}

TEST(Messages, RejectsWrongVersion) {
  auto bytes = Encode(GetPolicyReq{});
  bytes[0] = kProtocolVersion + 1;
  EXPECT_FALSE(Decode(bytes).has_value());
}

TEST(Messages, RejectsEmptyAndTruncated) {
  EXPECT_FALSE(Decode({}).has_value());
  const std::vector<std::uint8_t> only_version = {kProtocolVersion};
  EXPECT_FALSE(Decode(only_version).has_value());
  auto bytes = Encode(GetPDistancesReq{5});
  bytes.pop_back();
  EXPECT_FALSE(Decode(bytes).has_value());
}

TEST(Messages, RejectsTrailingGarbage) {
  auto bytes = Encode(GetPDistancesReq{5});
  bytes.push_back(0x00);
  EXPECT_FALSE(Decode(bytes).has_value());
}

TEST(Messages, RejectsInvalidCapabilityType) {
  auto bytes = Encode(GetCapabilityReq{core::CapabilityType::kCache, "x"});
  bytes[2] = 0x77;  // capability type byte
  EXPECT_FALSE(Decode(bytes).has_value());
}

TEST(Messages, FuzzDecodeNeverCrashes) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> len(0, 64);
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(len(rng)));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(byte(rng));
    (void)Decode(bytes);  // must not crash/throw
  }
}

TEST(Messages, MutatedValidMessagesNeverCrash) {
  GetPolicyResp msg;
  msg.thresholds = {0.65, 0.85};
  msg.time_of_day.push_back({4, 18, 23, 0.5});
  const auto base = Encode(msg);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::size_t> pos(0, base.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int trial = 0; trial < 5000; ++trial) {
    auto bytes = base;
    bytes[pos(rng)] = static_cast<std::uint8_t>(byte(rng));
    (void)Decode(bytes);
  }
}

}  // namespace
}  // namespace p4p::proto

#include "proto/messages.h"

#include <gtest/gtest.h>

#include <random>

namespace p4p::proto {
namespace {

template <typename T>
T RoundTrip(const T& msg) {
  const auto bytes = Encode(msg);
  const auto decoded = Decode(bytes);
  EXPECT_TRUE(decoded.has_value());
  const T* out = std::get_if<T>(&*decoded);
  EXPECT_NE(out, nullptr);
  return *out;
}

TEST(Messages, ErrorRoundTrip) {
  const auto out = RoundTrip(ErrorMsg{"something broke"});
  EXPECT_EQ(out.message, "something broke");
}

TEST(Messages, GetPDistancesReqRoundTrip) {
  const auto out = RoundTrip(GetPDistancesReq{17});
  EXPECT_EQ(out.from, 17);
  EXPECT_EQ(out.if_version, 0u);
}

TEST(Messages, ConditionalRequestsCarryVersionToken) {
  const auto row = RoundTrip(GetPDistancesReq{4, 77u});
  EXPECT_EQ(row.from, 4);
  EXPECT_EQ(row.if_version, 77u);
  const auto view = RoundTrip(GetExternalViewReq{123456789u});
  EXPECT_EQ(view.if_version, 123456789u);
}

TEST(Messages, PreTokenRequestsStillDecode) {
  // Requests encoded before the if_version field existed (no trailing u64)
  // must decode as unconditional.
  const std::vector<std::uint8_t> old_view = {kProtocolVersion,
                                              static_cast<std::uint8_t>(
                                                  MsgType::kGetExternalViewReq)};
  const auto view = Decode(old_view);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(std::get<GetExternalViewReq>(*view).if_version, 0u);

  std::vector<std::uint8_t> old_row = {kProtocolVersion,
                                       static_cast<std::uint8_t>(
                                           MsgType::kGetPDistancesReq),
                                       0, 0, 0, 9};
  const auto row = Decode(old_row);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(std::get<GetPDistancesReq>(*row).from, 9);
  EXPECT_EQ(std::get<GetPDistancesReq>(*row).if_version, 0u);
}

TEST(Messages, NotModifiedRoundTrip) {
  const auto out = RoundTrip(NotModifiedResp{42u});
  EXPECT_EQ(out.version, 42u);
  // The whole point: the encoded answer is tiny (frame header aside).
  EXPECT_LE(Encode(NotModifiedResp{42u}).size(), 16u);
}

TEST(Messages, NotModifiedRejectsTruncation) {
  auto bytes = Encode(NotModifiedResp{42u});
  bytes.pop_back();
  EXPECT_FALSE(Decode(bytes).has_value());
}

TEST(Messages, GetPDistancesRespRoundTrip) {
  GetPDistancesResp msg;
  msg.from = 3;
  msg.version = 987654321012345ULL;
  msg.distances = {0.0, 1.5, 2.25, 1e-12};
  const auto out = RoundTrip(msg);
  EXPECT_EQ(out.from, 3);
  EXPECT_EQ(out.version, 987654321012345ULL);
  EXPECT_EQ(out.distances, msg.distances);
}

TEST(Messages, ExternalViewRoundTrip) {
  GetExternalViewResp msg;
  msg.num_pids = 2;
  msg.version = 5;
  msg.distances = {0.0, 1.0, 2.0, 0.0};
  const auto out = RoundTrip(msg);
  EXPECT_EQ(out.num_pids, 2);
  EXPECT_EQ(out.distances, msg.distances);
}

TEST(Messages, ExternalViewRejectsMismatchedSize) {
  GetExternalViewResp msg;
  msg.num_pids = 3;
  msg.distances = {1.0, 2.0};  // should be 9
  const auto bytes = Encode(msg);
  EXPECT_FALSE(Decode(bytes).has_value());
}

TEST(Messages, PolicyRoundTrip) {
  GetPolicyResp msg;
  msg.thresholds = {0.65, 0.85};
  msg.time_of_day.push_back({4, 18, 23, 0.5});
  msg.time_of_day.push_back({7, 22, 6, 0.3});
  const auto out = RoundTrip(msg);
  EXPECT_DOUBLE_EQ(out.thresholds.near_congestion_utilization, 0.65);
  ASSERT_EQ(out.time_of_day.size(), 2u);
  EXPECT_EQ(out.time_of_day[1].link, 7);
  EXPECT_EQ(out.time_of_day[1].start_hour, 22);
  EXPECT_EQ(out.time_of_day[1].end_hour, 6);
  EXPECT_DOUBLE_EQ(out.time_of_day[1].max_utilization, 0.3);
}

TEST(Messages, CapabilityRoundTrip) {
  GetCapabilityReq req;
  req.type = core::CapabilityType::kOnDemandServer;
  req.content_id = "movie-42";
  const auto rout = RoundTrip(req);
  EXPECT_EQ(rout.type, core::CapabilityType::kOnDemandServer);
  EXPECT_EQ(rout.content_id, "movie-42");

  GetCapabilityResp resp;
  resp.capabilities.push_back({core::CapabilityType::kCache, 9, 1e9, "edge"});
  const auto out = RoundTrip(resp);
  ASSERT_EQ(out.capabilities.size(), 1u);
  EXPECT_EQ(out.capabilities[0].pid, 9);
  EXPECT_EQ(out.capabilities[0].description, "edge");
}

TEST(Messages, PidMapRoundTrip) {
  const auto req = RoundTrip(GetPidMapReq{"10.1.2.3"});
  EXPECT_EQ(req.client_ip, "10.1.2.3");
  GetPidMapResp resp;
  resp.found = true;
  resp.pid = 6;
  resp.as_number = 4711;
  const auto out = RoundTrip(resp);
  EXPECT_TRUE(out.found);
  EXPECT_EQ(out.pid, 6);
  EXPECT_EQ(out.as_number, 4711);
}

TEST(Messages, EmptyRequestsRoundTrip) {
  RoundTrip(GetExternalViewReq{});
  RoundTrip(GetPolicyReq{});
}

TEST(Messages, TypeOfCoversAll) {
  EXPECT_EQ(TypeOf(ErrorMsg{}), MsgType::kError);
  EXPECT_EQ(TypeOf(GetPDistancesReq{}), MsgType::kGetPDistancesReq);
  EXPECT_EQ(TypeOf(GetPDistancesResp{}), MsgType::kGetPDistancesResp);
  EXPECT_EQ(TypeOf(GetExternalViewReq{}), MsgType::kGetExternalViewReq);
  EXPECT_EQ(TypeOf(GetExternalViewResp{}), MsgType::kGetExternalViewResp);
  EXPECT_EQ(TypeOf(GetPolicyReq{}), MsgType::kGetPolicyReq);
  EXPECT_EQ(TypeOf(GetPolicyResp{}), MsgType::kGetPolicyResp);
  EXPECT_EQ(TypeOf(GetCapabilityReq{}), MsgType::kGetCapabilityReq);
  EXPECT_EQ(TypeOf(GetCapabilityResp{}), MsgType::kGetCapabilityResp);
  EXPECT_EQ(TypeOf(GetPidMapReq{}), MsgType::kGetPidMapReq);
  EXPECT_EQ(TypeOf(GetPidMapResp{}), MsgType::kGetPidMapResp);
}

TEST(Messages, RejectsUnknownType) {
  std::vector<std::uint8_t> bytes = {kProtocolVersion, 0xFF};
  EXPECT_FALSE(Decode(bytes).has_value());
}

TEST(Messages, RejectsWrongVersion) {
  auto bytes = Encode(GetPolicyReq{});
  bytes[0] = kProtocolVersion + 1;
  EXPECT_FALSE(Decode(bytes).has_value());
}

TEST(Messages, RejectsEmptyAndTruncated) {
  EXPECT_FALSE(Decode({}).has_value());
  const std::vector<std::uint8_t> only_version = {kProtocolVersion};
  EXPECT_FALSE(Decode(only_version).has_value());
  auto bytes = Encode(GetPDistancesReq{5});
  bytes.pop_back();
  EXPECT_FALSE(Decode(bytes).has_value());
}

TEST(Messages, RejectsTrailingGarbage) {
  auto bytes = Encode(GetPDistancesReq{5});
  bytes.push_back(0x00);
  EXPECT_FALSE(Decode(bytes).has_value());
}

TEST(Messages, RejectsInvalidCapabilityType) {
  auto bytes = Encode(GetCapabilityReq{core::CapabilityType::kCache, "x"});
  bytes[2] = 0x77;  // capability type byte
  EXPECT_FALSE(Decode(bytes).has_value());
}

TEST(Messages, FuzzDecodeNeverCrashes) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> len(0, 64);
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(len(rng)));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(byte(rng));
    (void)Decode(bytes);  // must not crash/throw
  }
}

TEST(Messages, MutatedValidMessagesNeverCrash) {
  GetPolicyResp msg;
  msg.thresholds = {0.65, 0.85};
  msg.time_of_day.push_back({4, 18, 23, 0.5});
  const auto base = Encode(msg);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::size_t> pos(0, base.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int trial = 0; trial < 5000; ++trial) {
    auto bytes = base;
    bytes[pos(rng)] = static_cast<std::uint8_t>(byte(rng));
    (void)Decode(bytes);
  }
}

// --- UDP validation datagram codec -----------------------------------------

TEST(ValidationDatagrams, RequestRoundTrip) {
  const auto bytes = EncodeValidationRequest({0xDEADBEEFCAFEBABEull, 42u});
  EXPECT_LE(bytes.size(), kMaxValidationDatagramBytes);
  const auto decoded = DecodeValidationRequest(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->nonce, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(decoded->if_version, 42u);
}

TEST(ValidationDatagrams, ResponseRoundTripReusesNotModifiedFrame) {
  // The response tail is the server's pre-encoded NotModifiedResp frame.
  const auto frame = Encode(NotModifiedResp{77u});
  const auto bytes =
      EncodeValidationResponse(123u, ValidationStatus::kNotModified, frame);
  EXPECT_LE(bytes.size(), kMaxValidationDatagramBytes);
  const auto decoded = DecodeValidationResponse(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->nonce, 123u);
  EXPECT_EQ(decoded->status, ValidationStatus::kNotModified);
  EXPECT_EQ(decoded->version, 77u);

  const auto redirect =
      EncodeValidationResponse(9u, ValidationStatus::kRevalidateOverTcp, frame);
  const auto r = DecodeValidationResponse(redirect);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, ValidationStatus::kRevalidateOverTcp);
  EXPECT_EQ(r->version, 77u);
}

TEST(ValidationDatagrams, TruncationRejectedAtEveryLength) {
  const auto request = EncodeValidationRequest({1u, 2u});
  for (std::size_t len = 0; len < request.size(); ++len) {
    EXPECT_FALSE(DecodeValidationRequest(
                     std::span<const std::uint8_t>(request.data(), len))
                     .has_value())
        << "request truncated to " << len;
  }
  const auto response = EncodeValidationResponse(
      1u, ValidationStatus::kNotModified, Encode(NotModifiedResp{5u}));
  for (std::size_t len = 0; len < response.size(); ++len) {
    EXPECT_FALSE(DecodeValidationResponse(
                     std::span<const std::uint8_t>(response.data(), len))
                     .has_value())
        << "response truncated to " << len;
  }
}

TEST(ValidationDatagrams, BadMagicRejected) {
  auto request = EncodeValidationRequest({1u, 2u});
  request[0] ^= 0xFF;
  EXPECT_FALSE(DecodeValidationRequest(request).has_value());
  auto response = EncodeValidationResponse(1u, ValidationStatus::kNotModified,
                                           Encode(NotModifiedResp{5u}));
  response[0] ^= 0xFF;
  EXPECT_FALSE(DecodeValidationResponse(response).has_value());
}

TEST(ValidationDatagrams, CrossedTagsRejected) {
  // A request parsed as a response (and vice versa) must fail.
  const auto request = EncodeValidationRequest({1u, 2u});
  EXPECT_FALSE(DecodeValidationResponse(request).has_value());
  const auto response = EncodeValidationResponse(1u, ValidationStatus::kNotModified,
                                                 Encode(NotModifiedResp{5u}));
  EXPECT_FALSE(DecodeValidationRequest(response).has_value());
}

TEST(ValidationDatagrams, OversizedDatagramRejected) {
  // Valid prefix + padding past the cap: rejected before any parsing.
  auto bytes = EncodeValidationRequest({1u, 2u});
  bytes.resize(kMaxValidationDatagramBytes + 1, 0x00);
  EXPECT_FALSE(DecodeValidationRequest(bytes).has_value());
  std::vector<std::uint8_t> huge(4096, 0xAB);
  EXPECT_FALSE(DecodeValidationRequest(huge).has_value());
  EXPECT_FALSE(DecodeValidationResponse(huge).has_value());
}

TEST(ValidationDatagrams, EverySingleBitFlipRejected) {
  // The trailing checksum must catch any single-bit corruption — this is
  // what makes "never a wrong answer" hold on a corrupting network.
  const auto request = EncodeValidationRequest({0x1122334455667788ull, 7u});
  for (std::size_t byte = 0; byte < request.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = request;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(DecodeValidationRequest(mutated).has_value())
          << "bit " << bit << " of byte " << byte;
    }
  }
  const auto response = EncodeValidationResponse(
      0x99AABBCCDDEEFF00ull, ValidationStatus::kNotModified,
      Encode(NotModifiedResp{1234567u}));
  for (std::size_t byte = 0; byte < response.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = response;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(DecodeValidationResponse(mutated).has_value())
          << "bit " << bit << " of byte " << byte;
    }
  }
}

TEST(ValidationDatagrams, BadStatusAndBadInnerFrameRejected) {
  // Unknown status byte (checksum recomputed so only the status is wrong).
  // Encode via the public encoder with a corrupted status is impossible, so
  // splice: body with patched status + fresh checksum must still fail on
  // the status check.
  const auto frame = Encode(NotModifiedResp{5u});
  auto bytes = EncodeValidationResponse(1u, ValidationStatus::kNotModified, frame);
  bytes[6] = 0x7F;  // status byte
  // Recompute FNV-1a over the body so the checksum passes.
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i + 4 < bytes.size(); ++i) {
    h ^= bytes[i];
    h *= 16777619u;
  }
  for (int shift = 24; shift >= 0; shift -= 8) {
    bytes[bytes.size() - 4 + static_cast<std::size_t>(3 - shift / 8)] =
        static_cast<std::uint8_t>(h >> shift);
  }
  EXPECT_FALSE(DecodeValidationResponse(bytes).has_value());

  // An embedded frame that is not NotModifiedResp is rejected even though
  // the datagram is otherwise well-formed.
  const auto wrong_inner = EncodeValidationResponse(
      1u, ValidationStatus::kNotModified, Encode(ErrorMsg{"x"}));
  EXPECT_FALSE(DecodeValidationResponse(wrong_inner).has_value());
}

TEST(ValidationDatagrams, FuzzDecodeNeverCrashes) {
  std::mt19937_64 rng(4242);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> len(0, 96);
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(len(rng)));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(byte(rng));
    (void)DecodeValidationRequest(bytes);   // must not crash/throw
    (void)DecodeValidationResponse(bytes);  // must not crash/throw
  }
}

TEST(ValidationDatagrams, MutatedValidDatagramsNeverCrash) {
  const auto request = EncodeValidationRequest({42u, 7u});
  const auto response = EncodeValidationResponse(
      42u, ValidationStatus::kNotModified, Encode(NotModifiedResp{7u}));
  std::mt19937_64 rng(17);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int trial = 0; trial < 5000; ++trial) {
    auto a = request;
    auto b = response;
    a[std::uniform_int_distribution<std::size_t>(0, a.size() - 1)(rng)] =
        static_cast<std::uint8_t>(byte(rng));
    b[std::uniform_int_distribution<std::size_t>(0, b.size() - 1)(rng)] =
        static_cast<std::uint8_t>(byte(rng));
    (void)DecodeValidationRequest(a);
    (void)DecodeValidationResponse(b);
  }
}

}  // namespace
}  // namespace p4p::proto

// Replication conformance suite: the delta-replication + control-loop
// guarantees proven over a seeded property sweep. Every scenario replays
// the same scripted telemetry feed through the full publisher/follower
// stack across lossy channels (see support/replication_harness.h) and must
// hold, for every seed and drop rate:
//   * the delta-sync follower converges to byte-for-byte the same
//     SnapshotFrameSet a full-push-only oracle follower holds;
//   * a follower never serves a version it has not fully installed —
//     never a mixed set, never a rollback, Unavailable only before the
//     first install;
//   * loss delays convergence but a clean channel always closes the gap.
// Plus: same-seed replay is bit-identical, the version-listener fix
// delivers exactly one notification per mutation, and an 8-thread hammer
// races telemetry ticks against serving and anti-entropy (TSan target).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/itracker.h"
#include "net/topology.h"
#include "proto/federation.h"
#include "proto/telemetry.h"
#include "support/replication_harness.h"

namespace p4p::proto {
namespace {

using testsupport::ReplicationScenarioConfig;
using testsupport::ReplicationScenarioResult;
using testsupport::RunReplicationScenario;

constexpr int kSeeds = 32;

ReplicationScenarioResult RunSeed(std::uint64_t seed, double drop_rate,
                                  double corrupt_rate = 0.0) {
  ReplicationScenarioConfig config;
  config.seed = seed;
  config.drop_rate = drop_rate;
  config.corrupt_rate = corrupt_rate;
  config.rounds = 30;
  return RunReplicationScenario(config);
}

void ExpectClean(const ReplicationScenarioResult& result) {
  for (const auto& violation : result.violations) {
    ADD_FAILURE() << violation;
  }
  // Convergence is part of every scenario: the run ends at the published
  // version with telemetry having driven real reprices.
  EXPECT_GT(result.final_version, 0u);
  EXPECT_GT(result.updates, 0u);
}

// --- the property sweep: 32 seeds x drop rates {0, .1, .5} ------------------

TEST(ReplicationConformanceTest, LosslessChannelsSeedSweep) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto result = RunSeed(seed, /*drop_rate=*/0.0);
    ExpectClean(result);
    // With nothing lost the follower tracks the publisher every round...
    EXPECT_EQ(result.max_staleness_rounds, 0) << "seed " << seed;
    EXPECT_EQ(result.delta_fallbacks, 0u) << "seed " << seed;
    // ...and rides the delta path: after the one bootstrap full push every
    // version travels as a delta, and the average delta frame is a strict
    // fraction of the average full frame (three repriced links touch only
    // the rows routed across them).
    EXPECT_GT(result.delta_installs, 0u) << "seed " << seed;
    ASSERT_GT(result.delta_frames_sent, 0u) << "seed " << seed;
    ASSERT_GT(result.full_frames_sent, 0u) << "seed " << seed;
    EXPECT_LT(result.delta_bytes_sent * result.full_frames_sent,
              result.full_bytes_sent * result.delta_frames_sent)
        << "seed " << seed;
  }
}

TEST(ReplicationConformanceTest, LightLossSeedSweep) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ExpectClean(RunSeed(seed, /*drop_rate=*/0.1, /*corrupt_rate=*/0.1));
  }
}

TEST(ReplicationConformanceTest, HeavyLossSeedSweep) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto result = RunSeed(seed, /*drop_rate=*/0.5, /*corrupt_rate=*/0.25);
    ExpectClean(result);
    // Heavy loss may stall the follower for stretches, but the staleness
    // bound holds: beacon + same-round retry + pull give several
    // independent chances per round, so the lag never spans the run.
    EXPECT_LT(result.max_staleness_rounds, 30) << "seed " << seed;
  }
}

TEST(ReplicationConformanceTest, LossyTelemetryStillConverges) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ReplicationScenarioConfig config;
    config.seed = seed;
    config.drop_rate = 0.3;
    config.corrupt_rate = 0.2;
    config.telemetry_drop_rate = 0.4;
    config.rounds = 30;
    const auto result = RunReplicationScenario(config);
    ExpectClean(result);
    // Lost flushes buffer their batch instead of burning a version: some
    // ticks are empty, so strictly fewer updates than rounds.
    EXPECT_LT(result.updates, 30u) << "seed " << seed;
  }
}

// --- replay determinism ------------------------------------------------------

TEST(ReplicationConformanceTest, SameSeedReplayIsBitIdentical) {
  const auto first = RunSeed(42, 0.5, 0.25);
  const auto second = RunSeed(42, 0.5, 0.25);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.final_version, second.final_version);
  EXPECT_EQ(first.max_staleness_rounds, second.max_staleness_rounds);
  EXPECT_EQ(first.delta_bytes_sent, second.delta_bytes_sent);
  EXPECT_EQ(first.full_bytes_sent, second.full_bytes_sent);
  // A different seed takes a different lossy path (the faults bite).
  const auto other = RunSeed(43, 0.5, 0.25);
  EXPECT_NE(first.digest, other.digest);
}

// --- version-listener regression (rapid successive mutations) ---------------

// Each mutation must deliver exactly one notification carrying exactly the
// version that mutation produced — the listener previously re-read the
// counter after unlocking, so back-to-back mutations could both observe the
// final version and look coalesced.
TEST(ReplicationConformanceTest, ListenerDeliversExactVersionPerMutation) {
  net::Graph graph = net::MakeAbilene();
  net::RoutingTable routing(graph);
  core::ITracker tracker(graph, routing);
  std::vector<std::uint64_t> seen;
  tracker.RegisterVersionListener([&seen](std::uint64_t v) { seen.push_back(v); });

  std::vector<std::uint64_t> expected;
  std::vector<double> prices(graph.link_count(), 0.0);
  for (int i = 0; i < 20; ++i) {
    prices[static_cast<std::size_t>(i) % prices.size()] = 1e-9 * (i + 1);
    tracker.SetStaticPrices(prices);
    expected.push_back(tracker.version());
  }
  EXPECT_EQ(seen, expected);
}

// Even when a listener misses notifications entirely (a slow republish
// trigger that drops most of them), beacon + pull anti-entropy still
// brings every follower to the final version.
TEST(ReplicationConformanceTest, FollowerReachesFinalVersionPastDroppyListener) {
  net::Graph graph = net::MakeAbilene();
  net::RoutingTable routing(graph);
  core::ITracker tracker(graph, routing);
  ITrackerService service(&tracker);
  ReplicatedSnapshotStore store;
  SnapshotFollower follower(&store);
  SnapshotPublisher publisher(&service);
  publisher.AddFollower("b.example", 1,
                        std::make_unique<InProcessTransport>(
                            follower.replication_handler()));

  // The republish trigger only acts on every third notification — the
  // worst realistic coalescing a slow listener can exhibit. The phase is
  // chosen so the final mutation's notification is one of the dropped
  // ones, leaving the follower genuinely behind.
  std::atomic<int> notifications{0};
  tracker.RegisterVersionListener([&](std::uint64_t) {
    if (notifications.fetch_add(1) % 3 == 1) publisher.PublishOnce();
  });

  std::vector<double> prices(graph.link_count(), 0.0);
  for (int i = 0; i < 10; ++i) {
    prices[0] = 1e-9 * (i + 1);
    tracker.SetStaticPrices(prices);
  }
  EXPECT_LT(store.version(), tracker.version());

  // Gap detection + one pull close whatever the listener skipped.
  follower.HandleBeacon(publisher.BeaconFrame());
  if (follower.behind()) {
    InProcessTransport to_publisher(publisher.replication_handler());
    follower.PullOnce(to_publisher);
  }
  EXPECT_EQ(store.version(), tracker.version());
}

// --- 8-thread hammer: telemetry ticks vs serving vs anti-entropy ------------

TEST(ReplicationConformanceConcurrencyTest, TelemetryTickVsServeHammer) {
  net::Graph graph = net::MakeAbilene();
  net::RoutingTable routing(graph);
  core::ITrackerConfig tracker_config;
  tracker_config.mode = core::PriceMode::kProtectedLink;
  core::ITracker tracker(graph, routing, tracker_config);
  tracker.ProtectLink(0, core::ProtectedLinkRule{0.5, 1.0, 0.1});
  tracker.ProtectLink(5, core::ProtectedLinkRule{0.5, 1.0, 0.1});
  ITrackerService service(&tracker);
  LinkLoadCollector collector(graph.link_count());

  ReplicatedSnapshotStore store;
  FollowerPortalService follower_service(&store);
  SnapshotFollower follower(&store);
  SnapshotPublisher publisher(&service);
  publisher.AddFollower("b.example", 1,
                        std::make_unique<InProcessTransport>(
                            follower.replication_handler()));
  PDistanceControlLoop loop(&tracker, &collector, &publisher);

  // Prime one installed version so the serving threads race live repricing
  // rather than an empty store (cold-start shedding is covered by the
  // scenario harness); keep the Unavailable branch below for safety.
  {
    InProcessTransport to_collector(collector.handler());
    LinkLoadReporter primer(99, &to_collector);
    primer.Record(0, 0.9 * graph.link(0).capacity_bps);
    primer.Flush();
    ASSERT_TRUE(loop.Tick());
  }

  constexpr int kFlushesPerFeeder = 150;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> served{0};

  // 2 telemetry feeders + 2 tick threads + 1 beacon + 1 puller + 2 serving
  // threads = 8 threads racing the full control loop.
  std::vector<std::thread> feeders;
  for (int f = 0; f < 2; ++f) {
    feeders.emplace_back([&, f] {
      InProcessTransport to_collector(collector.handler());
      LinkLoadReporter reporter(static_cast<std::uint32_t>(f + 1), &to_collector);
      for (int i = 0; i < kFlushesPerFeeder; ++i) {
        const double util = 0.2 + 0.5 * ((i + f) % 3);
        reporter.Record(0, util * graph.link(0).capacity_bps);
        reporter.Record(5, (1.0 - 0.4 * (i % 2)) * graph.link(5).capacity_bps);
        reporter.Flush();
      }
    });
  }

  std::vector<std::thread> tickers;
  for (int t = 0; t < 2; ++t) {
    tickers.emplace_back([&] {
      while (!done.load()) loop.Tick();
    });
  }

  std::thread beaconer([&] {
    while (!done.load()) follower.HandleBeacon(publisher.BeaconFrame());
  });

  std::thread puller([&] {
    InProcessTransport to_publisher(publisher.replication_handler());
    while (!done.load()) {
      if (follower.behind()) follower.PullOnce(to_publisher);
    }
  });

  std::vector<std::thread> servers;
  for (int s = 0; s < 2; ++s) {
    servers.emplace_back([&] {
      std::uint64_t last_version = 0;
      const auto view_req = Encode(GetExternalViewReq{});
      bool first = true;  // at least one serve even if the feeders win the race
      while (first || !done.load()) {
        first = false;
        const auto response = follower_service.HandleShared(view_req);
        const auto decoded = Decode(*response);
        ASSERT_TRUE(decoded.has_value());
        if (const auto* view = std::get_if<GetExternalViewResp>(&*decoded)) {
          ASSERT_GE(view->version, last_version);  // monotone, never torn
          last_version = view->version;
          // The version token just served must stay honored: NotModified
          // for it, or a strictly newer full view — nothing else.
          const auto conditional = Decode(
              follower_service.Handle(Encode(GetExternalViewReq{view->version})));
          ASSERT_TRUE(conditional.has_value());
          if (const auto* nm = std::get_if<NotModifiedResp>(&*conditional)) {
            ASSERT_EQ(nm->version, view->version);
          } else {
            const auto* newer = std::get_if<GetExternalViewResp>(&*conditional);
            ASSERT_NE(newer, nullptr);
            ASSERT_GT(newer->version, view->version);
          }
          served.fetch_add(1);
        } else {
          ASSERT_NE(std::get_if<UnavailableResp>(&*decoded), nullptr);
        }
      }
    });
  }

  for (auto& t : feeders) t.join();
  done.store(true);
  for (auto& t : tickers) t.join();
  beaconer.join();
  puller.join();
  for (auto& t : servers) t.join();

  // Settle: one final tick-equivalent publish + pull converges the store.
  publisher.PublishOnce();
  InProcessTransport to_publisher(publisher.replication_handler());
  follower.PullOnce(to_publisher);
  EXPECT_EQ(store.version(), tracker.version());
  EXPECT_GT(served.load(), 0u);
  EXPECT_GT(collector.accepted_count(), 0u);
  EXPECT_EQ(follower_service.Handle(Encode(GetExternalViewReq{})),
            service.Handle(Encode(GetExternalViewReq{})));
}

}  // namespace
}  // namespace p4p::proto

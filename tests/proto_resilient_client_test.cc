// ResilientPortalClient: SRV failover, circuit breaker, retry budget and
// deadline, retry-after honoring — all deterministic under the virtual
// clock and scripted endpoint failures.
#include "proto/resilient_client.h"

#include <gtest/gtest.h>

#include "core/apptracker.h"
#include "net/topology.h"
#include "proto/caching_client.h"
#include "proto/messages.h"
#include "support/fault_injection.h"

namespace p4p::proto {
namespace {

using testsupport::EndpointMode;
using testsupport::EndpointScript;
using testsupport::ScriptedTransport;
using testsupport::VirtualClock;

constexpr const char* kDomain = "isp.example";

class ResilientClientTest : public ::testing::Test {
 protected:
  ResilientClientTest()
      : graph_(net::MakeAbilene()), routing_(graph_), tracker_(graph_, routing_),
        service_(&tracker_) {
    dir_.AddRecord(kDomain, {"primary", 1, 0, 1});
    dir_.AddRecord(kDomain, {"secondary", 2, 10, 1});
    request_ = Encode(GetExternalViewReq{});
  }

  /// Routes "primary"/"secondary" targets to their scripts; any other
  /// target means a directory bug.
  ResilientPortalClient::TransportFactory Factory() {
    return [this](const SrvRecord& r) -> std::unique_ptr<Transport> {
      EXPECT_TRUE(r.target == "primary" || r.target == "secondary");
      auto* script = r.target == "primary" ? &primary_ : &secondary_;
      return std::make_unique<ScriptedTransport>(service_.handler(), script, &clock_,
                                                 slow_seconds_, retry_after_ms_);
    };
  }

  ResilientPortalClient MakeClient(ResilientClientOptions options) {
    return ResilientPortalClient(&dir_, kDomain, Factory(), options, clock_.NowFn(),
                                 clock_.SleeperFn());
  }

  /// A well-formed external-view answer for the current tracker state?
  static bool IsView(const std::vector<std::uint8_t>& bytes) {
    const auto decoded = Decode(bytes);
    return decoded && std::get_if<GetExternalViewResp>(&*decoded) != nullptr;
  }

  net::Graph graph_;
  net::RoutingTable routing_;
  core::ITracker tracker_;
  ITrackerService service_;
  PortalDirectory dir_;
  VirtualClock clock_;
  EndpointScript primary_;
  EndpointScript secondary_;
  double slow_seconds_ = 1.0;
  std::uint32_t retry_after_ms_ = 200;
  std::vector<std::uint8_t> request_;
};

TEST_F(ResilientClientTest, ConstructorValidation) {
  EXPECT_THROW(ResilientPortalClient(nullptr, kDomain, Factory()),
               std::invalid_argument);
  EXPECT_THROW(ResilientPortalClient(&dir_, "", Factory()), std::invalid_argument);
  EXPECT_THROW(ResilientPortalClient(&dir_, kDomain, nullptr), std::invalid_argument);
  ResilientClientOptions bad;
  bad.max_attempts = 0;
  EXPECT_THROW(MakeClient(bad), std::invalid_argument);
  bad = {};
  bad.backoff_jitter = 1.5;
  EXPECT_THROW(MakeClient(bad), std::invalid_argument);
}

TEST_F(ResilientClientTest, HealthyPrimaryServesFirstTry) {
  auto client = MakeClient({});
  EXPECT_TRUE(IsView(client.Call(request_)));
  EXPECT_EQ(client.attempt_count(), 1u);
  EXPECT_EQ(client.failover_count(), 0u);
  EXPECT_EQ(primary_.call_count(), 1u);
  EXPECT_EQ(secondary_.call_count(), 0u);
}

TEST_F(ResilientClientTest, BlackholedPrimaryFailsOverWithinRetryBudget) {
  primary_.Set(EndpointMode::kDead);
  auto client = MakeClient({});
  EXPECT_TRUE(IsView(client.Call(request_)));
  // One wasted attempt on the primary, answered by the secondary: no
  // backoff sleep was needed, so the failover cost zero (virtual) time.
  EXPECT_EQ(client.attempt_count(), 2u);
  EXPECT_EQ(client.failover_count(), 1u);
  EXPECT_EQ(secondary_.call_count(), 1u);
  EXPECT_EQ(clock_.Now(), 0.0);
}

TEST_F(ResilientClientTest, BreakerOpensAfterConsecutiveFailuresAndSkips) {
  primary_.Set(EndpointMode::kDead);
  ResilientClientOptions options;
  options.failure_threshold = 3;
  auto client = MakeClient(options);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(IsView(client.Call(request_)));
  EXPECT_EQ(client.endpoint_state("primary", 1), CircuitState::kOpen);
  EXPECT_EQ(client.breaker_open_count(), 1u);
  // Calls 1-3 each burned one attempt on the primary; 4 and 5 skipped it.
  EXPECT_EQ(primary_.call_count(), 3u);
  EXPECT_EQ(client.breaker_skip_count(), 2u);
  EXPECT_EQ(secondary_.call_count(), 5u);
}

TEST_F(ResilientClientTest, HalfOpenProbeClosesBreakerOnRecovery) {
  primary_.Set(EndpointMode::kDead);
  ResilientClientOptions options;
  options.failure_threshold = 2;
  options.open_cooldown_seconds = 5.0;
  auto client = MakeClient(options);
  for (int i = 0; i < 3; ++i) client.Call(request_);
  ASSERT_EQ(client.endpoint_state("primary", 1), CircuitState::kOpen);

  primary_.Set(EndpointMode::kOk);  // replica comes back
  // Before the cooldown: still skipped, no probe reaches it.
  clock_.Advance(1.0);
  client.Call(request_);
  EXPECT_EQ(primary_.call_count(), 2u);
  // After the cooldown: the next call probes half-open and recovers.
  clock_.Advance(5.0);
  EXPECT_TRUE(IsView(client.Call(request_)));
  EXPECT_EQ(client.endpoint_state("primary", 1), CircuitState::kClosed);
  EXPECT_EQ(client.breaker_close_count(), 1u);
  EXPECT_EQ(primary_.call_count(), 3u);
}

TEST_F(ResilientClientTest, FailedProbeReopensWithFreshCooldown) {
  primary_.Set(EndpointMode::kDead);
  ResilientClientOptions options;
  options.failure_threshold = 2;
  options.open_cooldown_seconds = 5.0;
  auto client = MakeClient(options);
  for (int i = 0; i < 2; ++i) client.Call(request_);
  ASSERT_EQ(client.endpoint_state("primary", 1), CircuitState::kOpen);

  clock_.Advance(6.0);  // cooldown over; the replica is still dead
  client.Call(request_);
  EXPECT_EQ(client.endpoint_state("primary", 1), CircuitState::kOpen);
  EXPECT_EQ(client.breaker_close_count(), 0u);
  // Immediately after the failed probe the fresh cooldown applies again.
  client.Call(request_);
  EXPECT_EQ(primary_.call_count(), 3u);  // 2 to trip + 1 probe, no more
}

TEST_F(ResilientClientTest, AllReplicasDeadThrowsTypedErrorWithinBudget) {
  primary_.Set(EndpointMode::kDead);
  secondary_.Set(EndpointMode::kDead);
  ResilientClientOptions options;
  options.max_attempts = 6;
  auto client = MakeClient(options);
  EXPECT_THROW(client.Call(request_), PortalUnavailableError);
  EXPECT_EQ(client.attempt_count(), 6u);
}

TEST_F(ResilientClientTest, AllBreakersOpenFailsFastWithReopenHint) {
  primary_.Set(EndpointMode::kDead);
  secondary_.Set(EndpointMode::kDead);
  ResilientClientOptions options;
  options.failure_threshold = 1;
  options.open_cooldown_seconds = 10.0;
  options.max_attempts = 4;
  auto client = MakeClient(options);
  EXPECT_THROW(client.Call(request_), PortalUnavailableError);
  ASSERT_EQ(client.endpoint_state("primary", 1), CircuitState::kOpen);
  ASSERT_EQ(client.endpoint_state("secondary", 2), CircuitState::kOpen);

  const auto attempts_before = client.attempt_count();
  const double now = clock_.Now();
  try {
    client.Call(request_);
    FAIL() << "expected PortalUnavailableError";
  } catch (const PortalUnavailableError& e) {
    // Fail fast: no transport attempt, no sleep, and a hint pointing at the
    // earliest breaker reopen.
    EXPECT_EQ(client.attempt_count(), attempts_before);
    EXPECT_EQ(clock_.Now(), now);
    EXPECT_GT(e.retry_after_seconds(), 0.0);
    EXPECT_LE(e.retry_after_seconds(), 10.0);
  }
}

TEST_F(ResilientClientTest, ServerShedHintFloorsBackoff) {
  dir_.RemoveRecord(kDomain, "secondary", 2);
  primary_.Set(EndpointMode::kUnavailable);  // alive but shedding
  ResilientClientOptions options;
  options.max_attempts = 3;
  options.backoff_initial_seconds = 0.01;  // well under the 200 ms hint
  options.request_deadline_seconds = 10.0;
  auto client = MakeClient(options);
  try {
    client.Call(request_);
    FAIL() << "expected PortalUnavailableError";
  } catch (const PortalUnavailableError& e) {
    EXPECT_DOUBLE_EQ(e.retry_after_seconds(), 0.2);
  }
  EXPECT_EQ(client.unavailable_count(), 3u);
  // Two inter-pass sleeps, each floored by the server's 200 ms hint (the
  // microsecond-granular virtual clock may truncate a hair below 0.4).
  EXPECT_GE(clock_.Now(), 0.399);
}

TEST_F(ResilientClientTest, SlowReplicaTripsRequestDeadline) {
  dir_.RemoveRecord(kDomain, "secondary", 2);
  slow_seconds_ = 3.0;
  primary_.Set(EndpointMode::kSlow);
  ResilientClientOptions options;
  options.request_deadline_seconds = 2.0;
  options.max_attempts = 10;
  auto client = MakeClient(options);
  // The slow answer itself still wins the first attempt (it completed, late
  // but whole) — but a retry round would cross the deadline, so a *failing*
  // slow replica burns at most one attempt.
  EXPECT_TRUE(IsView(client.Call(request_)));
  primary_.Set(EndpointMode::kDead);
  const double t0 = clock_.Now();
  EXPECT_THROW(client.Call(request_), PortalUnavailableError);
  // Attempts stop once the deadline passes, long before max_attempts.
  EXPECT_LT(client.attempt_count(), 11u);
  EXPECT_LE(clock_.Now() - t0, 2.5);
}

TEST_F(ResilientClientTest, FailoverIsBitIdenticalForFixedSeed) {
  auto run = [this](std::uint64_t seed) {
    EndpointScript primary(std::vector<EndpointScript::Phase>{
        {2, EndpointMode::kOk}, {4, EndpointMode::kDead}, {0, EndpointMode::kOk}});
    EndpointScript secondary(std::vector<EndpointScript::Phase>{
        {5, EndpointMode::kOk}, {2, EndpointMode::kDead}, {0, EndpointMode::kOk}});
    VirtualClock clock;
    ResilientClientOptions options;
    options.rng_seed = seed;
    options.failure_threshold = 2;
    options.open_cooldown_seconds = 1.0;
    ResilientPortalClient client(
        &dir_, kDomain,
        [&](const SrvRecord& r) -> std::unique_ptr<Transport> {
          return std::make_unique<ScriptedTransport>(
              service_.handler(), r.target == "primary" ? &primary : &secondary,
              &clock);
        },
        options, clock.NowFn(), clock.SleeperFn());
    std::vector<int> outcomes;
    for (int i = 0; i < 12; ++i) {
      try {
        client.Call(request_);
        outcomes.push_back(1);
      } catch (const PortalUnavailableError&) {
        outcomes.push_back(0);
        clock.Advance(0.5);
      }
    }
    outcomes.push_back(static_cast<int>(client.attempt_count()));
    outcomes.push_back(static_cast<int>(client.breaker_open_count()));
    outcomes.push_back(static_cast<int>(client.breaker_skip_count()));
    outcomes.push_back(static_cast<int>(clock.Now() * 1e6));
    return outcomes;
  };
  EXPECT_EQ(run(42), run(42));  // bit-identical replay
  EXPECT_EQ(run(42).size(), run(7).size());
}

// --- End-to-end degraded mode: the acceptance scenario ----------------------
//
// Primary blackholed -> served by the secondary. All replicas dead -> the
// caching layer serves the stale matrix (bounded) and the appTracker falls
// back to native selection. Replicas return -> guided selection resumes.

class FailoverEndToEnd : public ::testing::Test {
 protected:
  FailoverEndToEnd()
      : graph_(net::MakeAbilene()), routing_(graph_), tracker_(graph_, routing_),
        service_(&tracker_) {
    dir_.AddRecord(kDomain, {"primary", 1, 0, 1});
    dir_.AddRecord(kDomain, {"secondary", 2, 10, 1});
  }

  core::PidMap TestPidMap() {
    core::PidMap map;
    map.add(*core::Prefix::Parse("10.0.0.0/16"), {0, 1});
    map.add(*core::Prefix::Parse("10.1.0.0/16"), {1, 1});
    return map;
  }

  net::Graph graph_;
  net::RoutingTable routing_;
  core::ITracker tracker_;
  ITrackerService service_;
  PortalDirectory dir_;
  VirtualClock clock_;
  EndpointScript primary_;
  EndpointScript secondary_;
};

TEST_F(FailoverEndToEnd, StaleServiceNativeFallbackAndRecovery) {
  ResilientClientOptions options;
  options.failure_threshold = 2;
  options.open_cooldown_seconds = 2.0;
  options.max_attempts = 4;
  auto resilient = std::make_unique<ResilientPortalClient>(
      &dir_, kDomain,
      [this](const SrvRecord& r) -> std::unique_ptr<Transport> {
        return std::make_unique<ScriptedTransport>(
            service_.handler(), r.target == "primary" ? &primary_ : &secondary_,
            &clock_);
      },
      options, clock_.NowFn(), clock_.SleeperFn());
  auto* resilient_raw = resilient.get();

  const double ttl = 10.0;
  const std::size_t stale_cap = 3;
  CachingPortalClient cache(std::move(resilient), clock_.NowFn(), ttl, stale_cap);

  core::AppTracker app(std::make_unique<core::NativeRandomSelector>(), TestPidMap(), 7);
  app.EnableNativeFallback([&cache] { return cache.TryGetExternalView() != nullptr; });

  core::AnnounceRequest req;
  req.content_id = "film";
  req.client_ip = "10.0.0.1";

  // Healthy: guided announce, view fetched once.
  app.Announce(req);
  EXPECT_FALSE(app.degraded());
  EXPECT_EQ(cache.fetch_count(), 1u);

  // Primary blackholed inside the TTL: nothing even notices.
  primary_.Set(EndpointMode::kDead);
  app.Announce(req);
  EXPECT_FALSE(app.degraded());
  EXPECT_EQ(cache.hit_count(), 1u);  // served from the cached view

  // Past the TTL: the refresh fails over to the secondary within budget.
  clock_.Advance(ttl + 1.0);
  app.Announce(req);
  EXPECT_FALSE(app.degraded());
  EXPECT_GE(resilient_raw->failover_count(), 1u);

  // Every replica dies: refreshes fail, the stale matrix keeps serving and
  // announces fall back to native selection only once the budget is spent.
  secondary_.Set(EndpointMode::kDead);
  clock_.Advance(ttl + 1.0);
  std::size_t native_announces = 0;
  for (int i = 0; i < 8; ++i) {
    app.Announce(req);
    if (app.degraded()) ++native_announces;
    clock_.Advance(0.1);
  }
  EXPECT_EQ(cache.stale_served_total(), stale_cap);
  EXPECT_TRUE(app.degraded());
  EXPECT_EQ(app.fallback_transition_count(), 1u);
  EXPECT_EQ(native_announces, 8u - stale_cap);
  EXPECT_EQ(app.degraded_announce_count(), 8u - stale_cap);

  // Replicas return: past the breaker cooldown the next probe refreshes and
  // guided selection resumes.
  primary_.Set(EndpointMode::kOk);
  secondary_.Set(EndpointMode::kOk);
  clock_.Advance(options.open_cooldown_seconds + 1.0);
  app.Announce(req);
  EXPECT_FALSE(app.degraded());
  EXPECT_EQ(app.recovery_transition_count(), 1u);
  EXPECT_FALSE(cache.stale());
}

}  // namespace
}  // namespace p4p::proto

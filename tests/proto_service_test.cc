#include "proto/service.h"

#include <gtest/gtest.h>

#include "net/topology.h"

namespace p4p::proto {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest()
      : graph_(net::MakeAbilene()), routing_(graph_), tracker_(graph_, routing_) {
    policy_.SetThresholds({0.7, 0.9});
    policy_.AddTimeOfDayPolicy({2, 18, 23, 0.5});
    capabilities_.Add({core::CapabilityType::kCache, 3, 1e9, "metro cache"});
    pid_map_.add(*core::Prefix::Parse("10.0.0.0/8"), {4, 100});
  }

  PortalClient InProcessClient(const ITrackerService& service) {
    return PortalClient(std::make_unique<InProcessTransport>(service.handler()));
  }

  net::Graph graph_;
  net::RoutingTable routing_;
  core::ITracker tracker_;
  core::PolicyRegistry policy_;
  core::CapabilityRegistry capabilities_;
  core::PidMap pid_map_;
};

TEST_F(ServiceTest, RejectsNullTracker) {
  EXPECT_THROW(ITrackerService(nullptr), std::invalid_argument);
}

TEST_F(ServiceTest, GetPDistancesMatchesTracker) {
  ITrackerService service(&tracker_);
  auto client = InProcessClient(service);
  const auto row = client.GetPDistances(net::kChicago);
  const auto expected = tracker_.GetPDistances(net::kChicago);
  ASSERT_EQ(row.size(), expected.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    EXPECT_DOUBLE_EQ(row[j], expected[j]);
  }
}

TEST_F(ServiceTest, GetPDistancesUnknownPidIsError) {
  ITrackerService service(&tracker_);
  auto client = InProcessClient(service);
  EXPECT_THROW(client.GetPDistances(-1), std::runtime_error);
  EXPECT_THROW(client.GetPDistances(999), std::runtime_error);
}

TEST_F(ServiceTest, ExternalViewMatchesTracker) {
  ITrackerService service(&tracker_);
  auto client = InProcessClient(service);
  const auto view = client.GetExternalView();
  ASSERT_EQ(view.size(), tracker_.num_pids());
  for (core::Pid i = 0; i < view.size(); ++i) {
    for (core::Pid j = 0; j < view.size(); ++j) {
      EXPECT_DOUBLE_EQ(view.at(i, j), tracker_.pdistance(i, j));
    }
  }
}

TEST_F(ServiceTest, UnofferedInterfacesReturnErrors) {
  ITrackerService service(&tracker_);  // only p4p-distance offered
  auto client = InProcessClient(service);
  EXPECT_THROW(client.GetPolicy(), std::runtime_error);
  EXPECT_THROW(client.GetCapabilities(core::CapabilityType::kCache),
               std::runtime_error);
  EXPECT_THROW(client.GetPidMapping("10.1.1.1"), std::runtime_error);
}

TEST_F(ServiceTest, PolicyInterface) {
  ITrackerService service(&tracker_, &policy_);
  auto client = InProcessClient(service);
  const auto policy = client.GetPolicy();
  EXPECT_DOUBLE_EQ(policy.thresholds.near_congestion_utilization, 0.7);
  ASSERT_EQ(policy.time_of_day.size(), 1u);
  EXPECT_EQ(policy.time_of_day[0].link, 2);
}

TEST_F(ServiceTest, CapabilityInterface) {
  ITrackerService service(&tracker_, nullptr, &capabilities_);
  auto client = InProcessClient(service);
  const auto caps = client.GetCapabilities(core::CapabilityType::kCache);
  ASSERT_EQ(caps.size(), 1u);
  EXPECT_EQ(caps[0].pid, 3);
  EXPECT_TRUE(client.GetCapabilities(core::CapabilityType::kOnDemandServer).empty());
}

TEST_F(ServiceTest, PidMapInterface) {
  ITrackerService service(&tracker_, nullptr, nullptr, &pid_map_);
  auto client = InProcessClient(service);
  const auto mapping = client.GetPidMapping("10.5.5.5");
  ASSERT_TRUE(mapping.has_value());
  EXPECT_EQ(mapping->pid, 4);
  EXPECT_EQ(mapping->as_number, 100);
  EXPECT_FALSE(client.GetPidMapping("11.1.1.1").has_value());
}

TEST_F(ServiceTest, MalformedRequestGetsError) {
  ITrackerService service(&tracker_);
  const std::vector<std::uint8_t> garbage = {0xFF, 0xFF, 0xFF};
  const auto resp = service.Handle(garbage);
  const auto decoded = Decode(resp);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_NE(std::get_if<ErrorMsg>(&*decoded), nullptr);
}

TEST_F(ServiceTest, RequestWithResponseTypeIsRejected) {
  ITrackerService service(&tracker_);
  const auto resp = service.Handle(Encode(GetPDistancesResp{}));
  const auto decoded = Decode(resp);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_NE(std::get_if<ErrorMsg>(&*decoded), nullptr);
}

TEST_F(ServiceTest, FullStackOverTcp) {
  ITrackerService service(&tracker_, &policy_, &capabilities_, &pid_map_);
  TcpServer server(0, service.handler());
  PortalClient client(std::make_unique<TcpClient>(server.port()));

  const auto row = client.GetPDistances(net::kNewYork);
  EXPECT_EQ(row.size(), graph_.node_count());
  EXPECT_DOUBLE_EQ(client.GetPolicy().thresholds.heavy_usage_utilization, 0.9);
  EXPECT_EQ(client.GetCapabilities(core::CapabilityType::kCache).size(), 1u);
  EXPECT_TRUE(client.GetPidMapping("10.0.0.1").has_value());
}

TEST_F(ServiceTest, VersionReflectsTrackerUpdates) {
  ITrackerService service(&tracker_);
  const auto before = service.Handle(Encode(GetPDistancesReq{0}));
  std::vector<double> traffic(graph_.link_count(), 1e9);
  tracker_.Update(traffic);
  const auto after = service.Handle(Encode(GetPDistancesReq{0}));
  const auto v1 = std::get<GetPDistancesResp>(*Decode(before)).version;
  const auto v2 = std::get<GetPDistancesResp>(*Decode(after)).version;
  EXPECT_GT(v2, v1);
}

TEST(PortalClient, RejectsNullTransport) {
  EXPECT_THROW(PortalClient(nullptr), std::invalid_argument);
}

TEST_F(ServiceTest, ConditionalViewAnsweredNotModified) {
  ITrackerService service(&tracker_);
  const auto version = tracker_.version();
  const auto resp = service.Handle(Encode(GetExternalViewReq{version}));
  const auto decoded = Decode(resp);
  ASSERT_TRUE(decoded.has_value());
  const auto* nm = std::get_if<NotModifiedResp>(&*decoded);
  ASSERT_NE(nm, nullptr);
  EXPECT_EQ(nm->version, version);
}

TEST_F(ServiceTest, ConditionalRowAnsweredNotModified) {
  ITrackerService service(&tracker_);
  const auto version = tracker_.version();
  const auto resp = service.Handle(Encode(GetPDistancesReq{2, version}));
  const auto decoded = Decode(resp);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_NE(std::get_if<NotModifiedResp>(&*decoded), nullptr);
}

TEST_F(ServiceTest, StaleTokenGetsFullView) {
  ITrackerService service(&tracker_);
  const auto stale = tracker_.version();
  std::vector<double> traffic(graph_.link_count(), 1e9);
  tracker_.Update(traffic);
  const auto decoded = Decode(service.Handle(Encode(GetExternalViewReq{stale})));
  ASSERT_TRUE(decoded.has_value());
  const auto* view = std::get_if<GetExternalViewResp>(&*decoded);
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->version, tracker_.version());
  EXPECT_EQ(view->distances.size(),
            static_cast<std::size_t>(tracker_.num_pids()) * tracker_.num_pids());
}

TEST_F(ServiceTest, CacheDisabledMatchesCachedBytes) {
  // The pre-encoded fast path must be byte-identical to the slow path for
  // every cacheable request, including conditional ones.
  ITrackerService cached(&tracker_, &policy_);
  ITrackerService plain(&tracker_, &policy_, nullptr, nullptr,
                        ServiceOptions{.enable_response_cache = false});
  std::vector<double> traffic(graph_.link_count(), 5e8);
  tracker_.Update(traffic);
  const auto version = tracker_.version();

  std::vector<std::vector<std::uint8_t>> requests;
  requests.push_back(Encode(GetExternalViewReq{}));
  requests.push_back(Encode(GetExternalViewReq{version}));
  requests.push_back(Encode(GetPolicyReq{}));
  for (core::Pid i = 0; i < tracker_.num_pids(); ++i) {
    requests.push_back(Encode(GetPDistancesReq{i}));
    requests.push_back(Encode(GetPDistancesReq{i, version}));
  }
  for (const auto& req : requests) {
    EXPECT_EQ(cached.Handle(req), plain.Handle(req));
  }
}

TEST_F(ServiceTest, SharedHandlerReturnsSameBufferForRepeatRequests) {
  ITrackerService service(&tracker_);
  const auto handler = service.shared_handler();
  const auto req = Encode(GetExternalViewReq{});
  const auto a = handler(req);
  const auto b = handler(req);
  ASSERT_NE(a, nullptr);
  // Same snapshot version -> the very same pre-encoded buffer, no re-encode.
  EXPECT_EQ(a->data(), b->data());
  std::vector<double> traffic(graph_.link_count(), 1e9);
  tracker_.Update(traffic);
  const auto c = handler(req);
  ASSERT_NE(c, nullptr);
  EXPECT_NE(a->data(), c->data());
}

TEST_F(ServiceTest, ClientConditionalFetchHelper) {
  ITrackerService service(&tracker_);
  auto client = InProcessClient(service);
  const auto first = client.GetExternalViewIfModified(0);
  ASSERT_TRUE(first.has_value());
  const auto version = first->second;
  EXPECT_FALSE(client.GetExternalViewIfModified(version).has_value());
  std::vector<double> traffic(graph_.link_count(), 1e9);
  tracker_.Update(traffic);
  const auto refreshed = client.GetExternalViewIfModified(version);
  ASSERT_TRUE(refreshed.has_value());
  EXPECT_GT(refreshed->second, version);
}

TEST_F(ServiceTest, PolicyCacheTracksRegistryVersion) {
  ITrackerService service(&tracker_, &policy_);
  auto client = InProcessClient(service);
  EXPECT_DOUBLE_EQ(client.GetPolicy().thresholds.near_congestion_utilization,
                   0.7);
  policy_.SetThresholds({0.5, 0.8});
  EXPECT_DOUBLE_EQ(client.GetPolicy().thresholds.near_congestion_utilization,
                   0.5);
}

}  // namespace
}  // namespace p4p::proto

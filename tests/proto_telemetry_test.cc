// Telemetry plane tests: link-load report/ack codec totality, collector
// sequence gating and window aggregation, reporter flush/retry/resync
// semantics, and the p-distance control loop — the tick that closes
// telemetry -> reprice -> delta publish without manual Update calls.
#include "proto/telemetry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <random>
#include <thread>

#include "net/topology.h"
#include "proto/wire.h"

namespace p4p::proto {
namespace {

// --- codec ------------------------------------------------------------------

LinkLoadReport MakeReport(std::uint32_t reporter, std::uint64_t seq) {
  LinkLoadReport report;
  report.reporter = reporter;
  report.seq = seq;
  report.samples = {{0, 1.5e9}, {3, 0.0}, {7, 9.25e9}};
  return report;
}

TEST(TelemetryCodecTest, ReportRoundTrip) {
  const auto report = MakeReport(11, 42);
  const auto bytes = EncodeLinkLoadReport(report);
  EXPECT_EQ(PeekTelemetryTag(bytes), TelemetryTag::kReport);
  const auto decoded = DecodeLinkLoadReport(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->reporter, 11u);
  EXPECT_EQ(decoded->seq, 42u);
  ASSERT_EQ(decoded->samples.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded->samples[i].link, report.samples[i].link);
    EXPECT_EQ(decoded->samples[i].bps, report.samples[i].bps);
  }
  // An empty report (heartbeat) is legal on the wire.
  LinkLoadReport empty;
  empty.reporter = 1;
  empty.seq = 1;
  const auto empty_decoded = DecodeLinkLoadReport(EncodeLinkLoadReport(empty));
  ASSERT_TRUE(empty_decoded.has_value());
  EXPECT_TRUE(empty_decoded->samples.empty());
}

TEST(TelemetryCodecTest, AckRoundTrip) {
  for (const auto status : {TelemetryStatus::kAccepted, TelemetryStatus::kStaleSeq,
                            TelemetryStatus::kRejected}) {
    const auto bytes = EncodeTelemetryAck(TelemetryAck{status, 77});
    EXPECT_EQ(PeekTelemetryTag(bytes), TelemetryTag::kAck);
    const auto ack = DecodeTelemetryAck(bytes);
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->status, status);
    EXPECT_EQ(ack->seq, 77u);
  }
  // Cross-tag decoding fails both ways.
  EXPECT_FALSE(DecodeTelemetryAck(EncodeLinkLoadReport(MakeReport(1, 1))).has_value());
  EXPECT_FALSE(DecodeLinkLoadReport(
                   EncodeTelemetryAck(TelemetryAck{TelemetryStatus::kAccepted, 1}))
                   .has_value());
}

TEST(TelemetryCodecTest, RejectsCorruptionAndTruncation) {
  const auto bytes = EncodeLinkLoadReport(MakeReport(3, 9));
  for (std::size_t pos = 0; pos < bytes.size(); pos += 5) {
    auto corrupt = bytes;
    corrupt[pos] ^= 0x20;
    EXPECT_FALSE(DecodeLinkLoadReport(corrupt).has_value()) << "flip at " << pos;
  }
  for (const std::size_t len : {std::size_t{0}, std::size_t{9}, bytes.size() - 4,
                                bytes.size() - 1}) {
    EXPECT_FALSE(
        DecodeLinkLoadReport(std::span(bytes).first(len)).has_value())
        << "truncated to " << len;
  }
  auto extended = bytes;
  extended.push_back(0);
  EXPECT_FALSE(DecodeLinkLoadReport(extended).has_value());
}

TEST(TelemetryCodecTest, RejectsPoisonedSamplesAndZeroSeq) {
  // seq 0 means "never reported" collector-side and never travels.
  LinkLoadReport zero_seq = MakeReport(1, 0);
  EXPECT_FALSE(DecodeLinkLoadReport(EncodeLinkLoadReport(zero_seq)).has_value());

  // NaN, infinite, and negative loads are refused whole-frame — a price
  // input poisoned by one sample must never reach the tracker.
  for (const double bad : {std::nan(""), std::numeric_limits<double>::infinity(),
                           -1.0}) {
    LinkLoadReport report = MakeReport(1, 5);
    report.samples[1].bps = bad;
    EXPECT_FALSE(DecodeLinkLoadReport(EncodeLinkLoadReport(report)).has_value());
  }
  // A negative link id (wraps to the high u32 range) is refused too.
  LinkLoadReport report = MakeReport(1, 5);
  report.samples[0].link = -1;
  EXPECT_FALSE(DecodeLinkLoadReport(EncodeLinkLoadReport(report)).has_value());
}

TEST(TelemetryCodecTest, RejectsCountPayloadMismatch) {
  // A frame whose sample count disagrees with its payload size, sealed
  // with a *valid* checksum — only the structural check can catch it.
  Writer w;
  w.u32(kTelemetryMagic);
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(TelemetryTag::kReport));
  w.u32(1);   // reporter
  w.u64(1);   // seq
  w.u32(5);   // claims 5 samples...
  w.u32(0);
  w.f64(1.0);  // ...carries 1
  w.u32(FrameChecksum(w.bytes()));
  EXPECT_FALSE(DecodeLinkLoadReport(w.take()).has_value());
}

TEST(TelemetryCodecTest, DecodersTotalOnRandomBytes) {
  std::mt19937_64 rng(0x7E1E);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> noise(rng() % 64);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng());
    EXPECT_FALSE(DecodeLinkLoadReport(noise).has_value());
    EXPECT_FALSE(DecodeTelemetryAck(noise).has_value());
  }
}

// --- collector --------------------------------------------------------------

TEST(TelemetryCollectorTest, AggregatesWindowsWithLastKnownLoads) {
  LinkLoadCollector collector(4);
  EXPECT_EQ(collector.Ingest({1, 1, {{0, 100.0}, {2, 300.0}}}),
            TelemetryStatus::kAccepted);
  EXPECT_EQ(collector.Ingest({1, 2, {{0, 200.0}}}), TelemetryStatus::kAccepted);

  std::vector<double> loads(4, -1.0);
  EXPECT_EQ(collector.Drain(loads), 2u);
  EXPECT_EQ(loads[0], 150.0);  // window average of 100 and 200
  EXPECT_EQ(loads[1], -1.0);   // no samples: previous value kept
  EXPECT_EQ(loads[2], 300.0);
  EXPECT_EQ(loads[3], -1.0);

  // The drain reset the windows: nothing new means nothing touched.
  EXPECT_EQ(collector.Drain(loads), 0u);
  EXPECT_EQ(loads[0], 150.0);
  EXPECT_EQ(collector.accepted_count(), 2u);
  EXPECT_EQ(collector.sample_count(), 3u);

  // A wrongly sized loads vector is a programming error, not a silent skip.
  std::vector<double> wrong(3);
  EXPECT_THROW(collector.Drain(wrong), std::invalid_argument);
}

TEST(TelemetryCollectorTest, SeqGateStopsDuplicatesAndReorders) {
  LinkLoadCollector collector(4);
  EXPECT_EQ(collector.Ingest({7, 5, {{0, 10.0}}}), TelemetryStatus::kAccepted);

  // Duplicate and reordered reports are ignored whole, echoing the
  // high-water seq so the probe can resync.
  std::uint64_t seen = 0;
  EXPECT_EQ(collector.Ingest({7, 5, {{0, 10.0}}}, &seen), TelemetryStatus::kStaleSeq);
  EXPECT_EQ(seen, 5u);
  EXPECT_EQ(collector.Ingest({7, 3, {{0, 99.0}}}, &seen), TelemetryStatus::kStaleSeq);
  EXPECT_EQ(seen, 5u);

  // Sequences are scoped per reporter: another probe's seq 5 is fresh.
  EXPECT_EQ(collector.Ingest({8, 5, {{1, 20.0}}}), TelemetryStatus::kAccepted);

  std::vector<double> loads(4, 0.0);
  EXPECT_EQ(collector.Drain(loads), 2u);
  EXPECT_EQ(loads[0], 10.0);  // counted exactly once despite the duplicate
  EXPECT_EQ(loads[1], 20.0);
  EXPECT_EQ(collector.stale_count(), 2u);
}

TEST(TelemetryCollectorTest, RejectsOutOfRangeAndNonFinite) {
  LinkLoadCollector collector(2);
  // Out-of-range link: all-or-nothing, the valid sample must not land.
  EXPECT_EQ(collector.Ingest({1, 1, {{0, 5.0}, {2, 5.0}}}),
            TelemetryStatus::kRejected);
  EXPECT_EQ(collector.Ingest({1, 1, {{0, std::nan("")}}}),
            TelemetryStatus::kRejected);
  EXPECT_EQ(collector.Ingest({1, 0, {{0, 5.0}}}), TelemetryStatus::kRejected);
  std::vector<double> loads(2, 0.0);
  EXPECT_EQ(collector.Drain(loads), 0u);
  EXPECT_EQ(collector.rejected_count(), 3u);
  // The reporter's seq was never consumed by a rejected report.
  EXPECT_EQ(collector.Ingest({1, 1, {{0, 5.0}}}), TelemetryStatus::kAccepted);
}

TEST(TelemetryCollectorTest, HandlerAcksOverTheWire) {
  LinkLoadCollector collector(8);
  const auto ack_bytes =
      collector.HandleReport(EncodeLinkLoadReport(MakeReport(2, 1)));
  const auto ack = DecodeTelemetryAck(ack_bytes);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->status, TelemetryStatus::kAccepted);
  EXPECT_EQ(ack->seq, 1u);

  // Malformed bytes earn a kRejected ack — never silence, never a throw.
  const auto bad = DecodeTelemetryAck(collector.HandleReport(
      std::vector<std::uint8_t>{1, 2, 3}));
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->status, TelemetryStatus::kRejected);
}

// --- reporter ---------------------------------------------------------------

/// Transport that fails the first `failures` calls, then forwards.
class FlakyTransport final : public Transport {
 public:
  FlakyTransport(Handler backend, int failures)
      : backend_(std::move(backend)), failures_(failures) {}
  std::vector<std::uint8_t> Call(std::span<const std::uint8_t> request) override {
    if (failures_-- > 0) throw std::runtime_error("collector unreachable");
    return backend_(request);
  }

 private:
  Handler backend_;
  int failures_;
};

TEST(TelemetryReporterTest, FlushRetainsBatchAcrossTransportFailure) {
  LinkLoadCollector collector(4);
  FlakyTransport transport(collector.handler(), /*failures=*/2);
  LinkLoadReporter reporter(9, &transport);

  reporter.Record(0, 100.0);
  reporter.Record(1, 200.0);
  EXPECT_EQ(reporter.pending(), 2u);
  EXPECT_FALSE(reporter.Flush());  // lost: batch kept
  EXPECT_FALSE(reporter.Flush());  // lost again
  EXPECT_EQ(reporter.pending(), 2u);
  EXPECT_TRUE(reporter.Flush());   // through
  EXPECT_EQ(reporter.pending(), 0u);
  EXPECT_EQ(reporter.flush_failure_count(), 2u);

  // Exactly-once: the retried batch landed a single time.
  std::vector<double> loads(4, 0.0);
  EXPECT_EQ(collector.Drain(loads), 2u);
  EXPECT_EQ(loads[0], 100.0);
  EXPECT_EQ(loads[1], 200.0);
  EXPECT_EQ(collector.sample_count(), 2u);

  // Nothing pending: Flush is a free no-op, no wire traffic.
  EXPECT_TRUE(reporter.Flush());
  EXPECT_EQ(collector.accepted_count(), 1u);
}

TEST(TelemetryReporterTest, StaleAckResynchronizesSequence) {
  LinkLoadCollector collector(4);
  // The collector already saw this reporter at seq 5 (a previous process
  // incarnation whose acks were lost).
  ASSERT_EQ(collector.Ingest({9, 5, {{0, 1.0}}}), TelemetryStatus::kAccepted);

  InProcessTransport transport(collector.handler());
  LinkLoadReporter reporter(9, &transport);
  reporter.Record(1, 50.0);
  // The flush at seq 1 is judged stale; the reporter resyncs past the
  // collector's high-water mark instead of looping forever.
  EXPECT_TRUE(reporter.Flush());
  EXPECT_EQ(reporter.pending(), 0u);
  reporter.Record(1, 60.0);
  EXPECT_TRUE(reporter.Flush());  // now at seq 6: accepted
  EXPECT_EQ(collector.accepted_count(), 2u);
  std::vector<double> loads(4, 0.0);
  collector.Drain(loads);
  EXPECT_EQ(loads[1], 60.0);
}

TEST(TelemetryReporterTest, RecordRefusesPoisonedSamples) {
  LinkLoadCollector collector(4);
  InProcessTransport transport(collector.handler());
  LinkLoadReporter reporter(1, &transport);
  EXPECT_THROW(reporter.Record(-1, 1.0), std::invalid_argument);
  EXPECT_THROW(reporter.Record(0, -1.0), std::invalid_argument);
  EXPECT_THROW(reporter.Record(0, std::nan("")), std::invalid_argument);
  EXPECT_EQ(reporter.pending(), 0u);
}

// --- control loop -----------------------------------------------------------

class ControlLoopTest : public ::testing::Test {
 protected:
  ControlLoopTest()
      : graph_(net::MakeAbilene()), routing_(graph_),
        tracker_(graph_, routing_, ProtectedConfig()), service_(&tracker_),
        collector_(graph_.link_count()), follower_(&store_),
        publisher_(&service_) {
    tracker_.ProtectLink(0, core::ProtectedLinkRule{0.5, 1.0, 0.1});
    publisher_.AddFollower("b.example", 1,
                           std::make_unique<InProcessTransport>(
                               follower_.replication_handler()));
  }

  static core::ITrackerConfig ProtectedConfig() {
    core::ITrackerConfig config;
    config.mode = core::PriceMode::kProtectedLink;
    return config;
  }

  /// Feeds one over-threshold sample on the protected link.
  void FeedHotLink(std::uint64_t seq) {
    collector_.Ingest({1, seq, {{0, 0.9 * graph_.link(0).capacity_bps}}});
  }

  net::Graph graph_;
  net::RoutingTable routing_;
  core::ITracker tracker_;
  ITrackerService service_;
  LinkLoadCollector collector_;
  ReplicatedSnapshotStore store_;
  SnapshotFollower follower_;
  SnapshotPublisher publisher_;
};

TEST_F(ControlLoopTest, TickClosesTelemetryToFollowerLoop) {
  PDistanceControlLoop loop(&tracker_, &collector_, &publisher_);
  FeedHotLink(1);
  EXPECT_TRUE(loop.Tick());
  // One tick: repriced, republished, follower installed — no manual calls.
  EXPECT_EQ(tracker_.version(), 1u);
  EXPECT_GT(tracker_.link_price(0), 0.0);
  EXPECT_EQ(store_.version(), 1u);
  EXPECT_EQ(loop.update_count(), 1u);
  EXPECT_EQ(loop.publish_count(), 1u);
  EXPECT_EQ(loop.loads_bps()[0], 0.9 * graph_.link(0).capacity_bps);
}

TEST_F(ControlLoopTest, EmptyTicksBurnNoVersions) {
  PDistanceControlLoop loop(&tracker_, &collector_, &publisher_);
  EXPECT_FALSE(loop.Tick());
  EXPECT_FALSE(loop.Tick());
  EXPECT_EQ(tracker_.version(), 0u);
  EXPECT_EQ(loop.tick_count(), 2u);
  EXPECT_EQ(loop.update_count(), 0u);

  // update_on_empty_tick opts into repricing from last-known loads.
  ControlLoopOptions options;
  options.update_on_empty_tick = true;
  PDistanceControlLoop eager(&tracker_, &collector_, nullptr, options);
  EXPECT_TRUE(eager.Tick());
  EXPECT_EQ(tracker_.version(), 1u);
}

TEST_F(ControlLoopTest, QuietLinksKeepLastKnownLoad) {
  PDistanceControlLoop loop(&tracker_, &collector_, nullptr);
  FeedHotLink(1);
  ASSERT_TRUE(loop.Tick());
  const double price_after_first = tracker_.link_price(0);
  ASSERT_GT(price_after_first, 0.0);

  // The next window carries only another link: link 0's last-known load
  // stays over threshold, so its price keeps climbing instead of decaying
  // against a phantom zero.
  collector_.Ingest({1, 2, {{3, 1.0e6}}});
  ASSERT_TRUE(loop.Tick());
  EXPECT_EQ(loop.loads_bps()[0], 0.9 * graph_.link(0).capacity_bps);
  EXPECT_GT(tracker_.link_price(0), price_after_first);
}

TEST_F(ControlLoopTest, StartStopBackgroundSmoke) {
  PDistanceControlLoop loop(&tracker_, &collector_, &publisher_);
  InProcessTransport to_collector(collector_.handler());
  LinkLoadReporter reporter(1, &to_collector);
  loop.Start(std::chrono::milliseconds(1));

  for (std::uint64_t i = 0; loop.update_count() < 3 && i < 2000; ++i) {
    reporter.Record(0, 0.9 * graph_.link(0).capacity_bps);
    reporter.Flush();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  loop.Stop();
  loop.Stop();  // idempotent

  EXPECT_GE(loop.update_count(), 3u);
  EXPECT_GE(tracker_.version(), 3u);
  EXPECT_EQ(store_.version(), tracker_.version());
  // Restart works after a stop.
  loop.Start(std::chrono::milliseconds(1));
  loop.Stop();
}

}  // namespace
}  // namespace p4p::proto

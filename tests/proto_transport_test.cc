#include "proto/transport.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace p4p::proto {
namespace {

// Live threads of this process, from /proc/self/status (Linux-only, as is
// the epoll server itself).
int CountProcessThreads() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::stoi(line.substr(8));
    }
  }
  return -1;
}

std::vector<std::uint8_t> EchoUpper(std::span<const std::uint8_t> in) {
  std::vector<std::uint8_t> out(in.begin(), in.end());
  for (auto& b : out) {
    if (b >= 'a' && b <= 'z') b = static_cast<std::uint8_t>(b - 'a' + 'A');
  }
  return out;
}

std::vector<std::uint8_t> Bytes(const char* s) {
  return std::vector<std::uint8_t>(s, s + std::string(s).size());
}

TEST(InProcessTransport, CallsHandler) {
  InProcessTransport t(EchoUpper);
  EXPECT_EQ(t.Call(Bytes("hello")), Bytes("HELLO"));
}

TEST(InProcessTransport, RejectsNullHandler) {
  EXPECT_THROW(InProcessTransport(nullptr), std::invalid_argument);
}

TEST(TcpTransport, RoundTripOverLoopback) {
  TcpServer server(0, EchoUpper);
  ASSERT_GT(server.port(), 0);
  TcpClient client(server.port());
  EXPECT_EQ(client.Call(Bytes("ping")), Bytes("PING"));
}

TEST(TcpTransport, MultipleRequestsOnOneConnection) {
  TcpServer server(0, EchoUpper);
  TcpClient client(server.port());
  for (int i = 0; i < 50; ++i) {
    const auto msg = Bytes(("msg" + std::to_string(i)).c_str());
    auto expected = msg;
    for (auto& b : expected) {
      if (b >= 'a' && b <= 'z') b = static_cast<std::uint8_t>(b - 'a' + 'A');
    }
    EXPECT_EQ(client.Call(msg), expected);
  }
}

TEST(TcpTransport, ConcurrentClients) {
  TcpServer server(0, EchoUpper);
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&server, &failures, c] {
      try {
        TcpClient client(server.port());
        for (int i = 0; i < 20; ++i) {
          const auto msg = Bytes(("c" + std::to_string(c)).c_str());
          if (client.Call(msg) != EchoUpper(msg)) ++failures;
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(TcpTransport, EmptyPayload) {
  TcpServer server(0, EchoUpper);
  TcpClient client(server.port());
  EXPECT_TRUE(client.Call({}).empty());
}

TEST(TcpTransport, LargePayload) {
  TcpServer server(0, EchoUpper);
  TcpClient client(server.port());
  std::vector<std::uint8_t> big(1 << 20, 'a');
  const auto resp = client.Call(big);
  ASSERT_EQ(resp.size(), big.size());
  EXPECT_EQ(resp[0], 'A');
  EXPECT_EQ(resp.back(), 'A');
}

TEST(TcpTransport, ConnectFailureThrows) {
  // Port 1 on loopback is almost certainly closed.
  EXPECT_THROW(TcpClient(1), std::runtime_error);
}

TEST(TcpTransport, ServerStopIsIdempotent) {
  TcpServer server(0, EchoUpper);
  server.Stop();
  server.Stop();
}

TEST(TcpTransport, CallAfterServerStopFails) {
  auto server = std::make_unique<TcpServer>(0, EchoUpper);
  TcpClient client(server->port());
  EXPECT_EQ(client.Call(Bytes("x")), Bytes("X"));
  server.reset();
  EXPECT_THROW(
      {
        // One call may succeed if buffered; keep trying until the closed
        // socket surfaces.
        for (int i = 0; i < 10; ++i) client.Call(Bytes("x"));
      },
      std::runtime_error);
}

TEST(TcpTransport, HandlerExceptionDropsConnection) {
  TcpServer server(0, [](std::span<const std::uint8_t>) -> std::vector<std::uint8_t> {
    throw std::runtime_error("boom");
  });
  TcpClient client(server.port());
  EXPECT_THROW(client.Call(Bytes("x")), std::runtime_error);
}

TEST(TcpTransport, RejectsNullHandler) {
  EXPECT_THROW(TcpServer(0, Handler(nullptr)), std::invalid_argument);
  EXPECT_THROW(TcpServer(0, SharedHandler(nullptr)), std::invalid_argument);
}

TEST(TcpTransport, SharedHandlerServesSharedBuffer) {
  // One pre-encoded buffer answers every request, zero-copy on the server.
  const auto canned = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>{'o', 'k'});
  TcpServer server(0, SharedHandler([canned](std::span<const std::uint8_t>) {
                     return canned;
                   }));
  TcpClient client(server.port());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client.Call(Bytes("q")), (std::vector<std::uint8_t>{'o', 'k'}));
  }
}

TEST(TcpTransport, SharedHandlerNullResponseDropsConnection) {
  TcpServer server(0, SharedHandler([](std::span<const std::uint8_t>) {
                     return SharedResponse{};
                   }));
  TcpClient client(server.port());
  EXPECT_THROW(client.Call(Bytes("x")), std::runtime_error);
}

TEST(TcpTransport, FixedWorkerPool) {
  TcpServer server(0, EchoUpper, 3);
  EXPECT_EQ(server.worker_count(), 3);
}

TEST(TcpTransport, SerialConnectionsDoNotAccumulateThreads) {
  // Regression for the former thread-per-connection server, whose workers_
  // vector grew one (never-reaped) thread per accepted connection. The
  // epoll server must stay at its fixed pool no matter how many
  // connections come and go.
  TcpServer server(0, EchoUpper, 2);
  {
    TcpClient warmup(server.port());
    warmup.Call(Bytes("w"));
  }
  const int before = CountProcessThreads();
  ASSERT_GT(before, 0);
  for (int i = 0; i < 200; ++i) {
    TcpClient client(server.port());
    client.Call(Bytes("x"));
  }
  const int after = CountProcessThreads();
  // Identical modulo scheduling slack; 200 leaked threads trips this by a
  // mile either way.
  EXPECT_LE(after, before + 2);
}

TEST(TcpTransport, InterleavedClientsOnOneWorker) {
  // Two connections multiplexed by a single worker must not block each
  // other: alternate requests between them on one thread.
  TcpServer server(0, EchoUpper, 1);
  TcpClient a(server.port());
  TcpClient b(server.port());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.Call(Bytes("aa")), Bytes("AA"));
    EXPECT_EQ(b.Call(Bytes("bb")), Bytes("BB"));
  }
}

}  // namespace
}  // namespace p4p::proto

// The UDP validation fast path on hostile networks.
//
// Split into three layers:
//   * real-socket tests — server/client happy paths, garbage handling, and
//     a blackholed server (bounded timeout, no hang);
//   * deterministic lossy-network property tests — the client driven
//     through FaultInjectingTransport against the real ITrackerService
//     handler, sweeping drop rates and seeds: every Validate() either
//     returns the correct answer or no answer (fallback), never a wrong
//     one, and the same seed replays the same outcome;
//   * CachingPortalClient regression — with validate_via_udp on and the UDP
//     path blackholed, TTL refresh still succeeds over TCP and the cached
//     matrix survives a NotModified.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/itracker.h"
#include "net/topology.h"
#include "proto/caching_client.h"
#include "proto/messages.h"
#include "proto/service.h"
#include "proto/transport.h"
#include "support/fault_injection.h"

namespace p4p::proto {
namespace {

using testsupport::FaultInjectingTransport;
using testsupport::FaultProfile;

/// Tiny timeouts keep every lossy/blackhole test bounded by
/// max_tries * max_timeout (a few tens of milliseconds).
UdpValidationOptions FastOptions() {
  UdpValidationOptions options;
  options.max_tries = 3;
  options.initial_timeout = std::chrono::milliseconds(5);
  options.backoff_factor = 2.0;
  options.max_timeout = std::chrono::milliseconds(20);
  return options;
}

/// Sequential nonces make injected-fault runs replayable.
std::function<std::uint64_t()> CountingNonce() {
  auto next = std::make_shared<std::uint64_t>(0);
  return [next] { return ++*next; };
}

class UdpValidationTest : public ::testing::Test {
 protected:
  UdpValidationTest()
      : graph_(net::MakeAbilene()), routing_(graph_), tracker_(graph_, routing_),
        service_(&tracker_) {
    std::vector<double> traffic(graph_.link_count(), 1e8);
    tracker_.Update(traffic);  // version > 0 so "current token" is meaningful
  }

  net::Graph graph_;
  net::RoutingTable routing_;
  core::ITracker tracker_;
  ITrackerService service_;
};

// --- real sockets -----------------------------------------------------------

TEST_F(UdpValidationTest, CurrentTokenAnsweredNotModified) {
  UdpValidationServer server(0, service_.validation_handler());
  UdpValidationClient client(std::make_unique<UdpClientTransport>(server.port()),
                             {.max_tries = 4,
                              .initial_timeout = std::chrono::milliseconds(200)});
  const auto outcome = client.Validate(tracker_.version());
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->not_modified);
  EXPECT_EQ(outcome->version, tracker_.version());
  EXPECT_EQ(client.answer_count(), 1u);
}

TEST_F(UdpValidationTest, StaleTokenRedirectedToTcp) {
  UdpValidationServer server(0, service_.validation_handler());
  UdpValidationClient client(std::make_unique<UdpClientTransport>(server.port()),
                             {.max_tries = 4,
                              .initial_timeout = std::chrono::milliseconds(200)});
  const std::uint64_t stale = tracker_.version();
  std::vector<double> traffic(graph_.link_count(), 2e8);
  tracker_.Update(traffic);
  const auto outcome = client.Validate(stale);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->not_modified);
  EXPECT_EQ(outcome->version, tracker_.version());
}

TEST_F(UdpValidationTest, UnconditionalRequestIsRedirect) {
  // if_version == 0 means "no cached data": UDP never carries the matrix,
  // so the answer is always the revalidate redirect.
  UdpValidationServer server(0, service_.validation_handler());
  UdpValidationClient client(std::make_unique<UdpClientTransport>(server.port()),
                             {.max_tries = 4,
                              .initial_timeout = std::chrono::milliseconds(200)});
  const auto outcome = client.Validate(0);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->not_modified);
}

TEST_F(UdpValidationTest, ServerIgnoresGarbageDatagrams) {
  UdpValidationServer server(0, service_.validation_handler());
  UdpClientTransport garbage(server.port());
  const std::vector<std::uint8_t> junk = {0xde, 0xad, 0xbe, 0xef, 0x00};
  ASSERT_TRUE(garbage.Send(junk));
  // The server must not answer junk (no amplification) and must keep
  // serving valid requests afterwards.
  EXPECT_FALSE(garbage.Receive(std::chrono::milliseconds(50)).has_value());
  UdpValidationClient client(std::make_unique<UdpClientTransport>(server.port()),
                             {.max_tries = 4,
                              .initial_timeout = std::chrono::milliseconds(200)});
  EXPECT_TRUE(client.Validate(tracker_.version()).has_value());
  EXPECT_GE(server.ignored_count(), 1u);
}

TEST_F(UdpValidationTest, BlackholedServerTimesOutBounded) {
  // A socket that is bound but never read: requests vanish into the kernel
  // buffer. The client must fail over within max_tries * max_timeout.
  const int sink = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(sink, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(sink, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(sink, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  const auto options = FastOptions();
  UdpValidationClient client(
      std::make_unique<UdpClientTransport>(ntohs(addr.sin_port)), options);
  const auto begin = std::chrono::steady_clock::now();
  const auto outcome = client.Validate(42);
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  EXPECT_FALSE(outcome.has_value());
  EXPECT_EQ(client.fallback_count(), 1u);
  EXPECT_EQ(client.sent_count(), static_cast<std::uint64_t>(options.max_tries));
  // Generous bound: per-try timeouts plus scheduling slack.
  EXPECT_LT(elapsed, std::chrono::milliseconds(
                         options.max_timeout.count() * options.max_tries + 500));
  ::close(sink);
}

TEST_F(UdpValidationTest, ClientRejectsWrongNonce) {
  // A handler that answers with a mangled nonce: the client must discard
  // every response and fall back.
  DatagramHandler wrong_nonce = [this](std::span<const std::uint8_t> datagram)
      -> std::optional<std::vector<std::uint8_t>> {
    const auto request = DecodeValidationRequest(datagram);
    if (!request) return std::nullopt;
    const auto frame = Encode(NotModifiedResp{tracker_.version()});
    return EncodeValidationResponse(request->nonce + 1,
                                    ValidationStatus::kNotModified, frame);
  };
  auto transport = std::make_unique<FaultInjectingTransport>(
      std::move(wrong_nonce), FaultProfile{}, /*seed=*/1);
  UdpValidationClient client(std::move(transport), FastOptions(), CountingNonce());
  EXPECT_FALSE(client.Validate(tracker_.version()).has_value());
  EXPECT_GE(client.nonce_mismatch_count(), 1u);
  EXPECT_EQ(client.fallback_count(), 1u);
}

// --- deterministic lossy-network property tests -----------------------------

struct LossyRunResult {
  int answers = 0;
  int fallbacks = 0;
  std::uint64_t sent = 0;
  std::uint64_t rejected = 0;
};

/// Runs `calls` validations against the real service through a faulty link
/// and asserts the core property: every answer is exactly correct (status
/// matches whether the token is current; version is the server's). Returns
/// run statistics for determinism comparisons.
LossyRunResult RunLossy(const ITrackerService& service, std::uint64_t current_version,
                        const FaultProfile& faults, std::uint64_t seed, int calls) {
  LossyRunResult result;
  auto transport = std::make_unique<FaultInjectingTransport>(
      service.validation_handler(), faults, seed);
  UdpValidationClient client(std::move(transport), FastOptions(), CountingNonce());
  for (int i = 0; i < calls; ++i) {
    const bool ask_current = (i % 2) == 0;
    const std::uint64_t token = ask_current ? current_version : current_version + 1000;
    const auto outcome = client.Validate(token);
    if (!outcome) {
      ++result.fallbacks;
      continue;
    }
    ++result.answers;
    // Never a wrong answer: the status must match the token's currency and
    // the version must be the server's, bit flips notwithstanding.
    EXPECT_EQ(outcome->not_modified, ask_current)
        << "seed=" << seed << " call=" << i;
    EXPECT_EQ(outcome->version, current_version) << "seed=" << seed << " call=" << i;
  }
  result.sent = client.sent_count();
  result.rejected = client.rejected_count();
  return result;
}

TEST_F(UdpValidationTest, LossySweepNeverYieldsWrongAnswer) {
  const std::uint64_t version = tracker_.version();
  int total_answers = 0;
  for (const double drop : {0.0, 0.1, 0.5}) {
    FaultProfile faults;
    faults.drop_rate = drop;
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
      const auto run = RunLossy(service_, version, faults, seed, 8);
      total_answers += run.answers;
      if (drop == 0.0) {
        // A lossless link must answer every call on the first try.
        EXPECT_EQ(run.answers, 8) << "seed=" << seed;
        EXPECT_EQ(run.fallbacks, 0) << "seed=" << seed;
      }
    }
  }
  EXPECT_GT(total_answers, 0);
}

TEST_F(UdpValidationTest, AllFaultsCombinedNeverYieldWrongAnswer) {
  const std::uint64_t version = tracker_.version();
  FaultProfile faults;
  faults.drop_rate = 0.3;
  faults.duplicate_rate = 0.3;
  faults.reorder_rate = 0.3;
  faults.corrupt_rate = 0.3;
  faults.delay_rate = 0.3;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    (void)RunLossy(service_, version, faults, seed, 8);  // asserts inside
  }
}

TEST_F(UdpValidationTest, SameSeedReplaysIdentically) {
  // The acceptance criterion: a 50%-drop run is deterministic — the same
  // seed reproduces the same answers, fallbacks, and datagram counts.
  const std::uint64_t version = tracker_.version();
  FaultProfile faults;
  faults.drop_rate = 0.5;
  faults.corrupt_rate = 0.2;
  faults.duplicate_rate = 0.2;
  faults.delay_rate = 0.2;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto first = RunLossy(service_, version, faults, seed, 16);
    const auto second = RunLossy(service_, version, faults, seed, 16);
    EXPECT_EQ(first.answers, second.answers) << "seed=" << seed;
    EXPECT_EQ(first.fallbacks, second.fallbacks) << "seed=" << seed;
    EXPECT_EQ(first.sent, second.sent) << "seed=" << seed;
    EXPECT_EQ(first.rejected, second.rejected) << "seed=" << seed;
  }
}

TEST_F(UdpValidationTest, RetryRecoversFromDeterministicDrops) {
  // Drop exactly the first request datagram: try 1 times out, try 2 wins.
  int request_index = 0;
  DatagramHandler handler = service_.validation_handler();
  DatagramHandler drop_first = [&request_index, handler](
                                   std::span<const std::uint8_t> datagram)
      -> std::optional<std::vector<std::uint8_t>> {
    if (request_index++ == 0) return std::nullopt;  // swallowed by the network
    return handler(datagram);
  };
  auto transport = std::make_unique<FaultInjectingTransport>(
      std::move(drop_first), FaultProfile{}, /*seed=*/7);
  UdpValidationClient client(std::move(transport), FastOptions(), CountingNonce());
  const auto outcome = client.Validate(tracker_.version());
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->not_modified);
  EXPECT_EQ(client.sent_count(), 2u);
  EXPECT_EQ(client.timeout_count(), 1u);
}

TEST_F(UdpValidationTest, DelayedAnswerToEarlierTryStillAccepted) {
  // Every response is delayed one tick: the answer to try 1 arrives while
  // try 2 waits. The nonce of any try in the same call must be accepted.
  FaultProfile response_faults;
  response_faults.delay_rate = 1.0;
  response_faults.max_delay_ticks = 1;
  auto transport = std::make_unique<FaultInjectingTransport>(
      service_.validation_handler(), FaultProfile{}, response_faults, /*seed=*/3);
  UdpValidationClient client(std::move(transport), FastOptions(), CountingNonce());
  const auto outcome = client.Validate(tracker_.version());
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->not_modified);
}

// --- CachingPortalClient integration ---------------------------------------

TEST_F(UdpValidationTest, CachingClientValidatesViaUdp) {
  double now = 0.0;
  CachingPortalClient client(std::make_unique<InProcessTransport>(service_.handler()),
                             [&now] { return now; }, /*ttl_seconds=*/10.0);
  client.EnableUdpValidation(std::make_unique<UdpValidationClient>(
      std::make_unique<FaultInjectingTransport>(service_.validation_handler(),
                                                FaultProfile{}, /*seed=*/1),
      FastOptions(), CountingNonce()));
  ASSERT_TRUE(client.validate_via_udp());

  const auto& view = client.GetExternalView();
  const auto first_values = view;
  now = 11.0;  // TTL expired, version unchanged: UDP answers NotModified
  const auto& revalidated = client.GetExternalView();
  EXPECT_EQ(client.fetch_count(), 1u);
  EXPECT_EQ(client.validation_count(), 1u);
  EXPECT_EQ(client.udp_validation_count(), 1u);
  EXPECT_EQ(client.udp_fallback_count(), 0u);
  for (core::Pid i = 0; i < revalidated.size(); ++i) {
    for (core::Pid j = 0; j < revalidated.size(); ++j) {
      EXPECT_DOUBLE_EQ(revalidated.at(i, j), first_values.at(i, j));
    }
  }
}

TEST_F(UdpValidationTest, CachingClientBlackholedUdpFallsBackToTcp) {
  // The regression the issue demands: validate_via_udp on, UDP 100% drop —
  // TTL refresh must still succeed over TCP and the cached matrix must
  // survive the NotModified.
  double now = 0.0;
  CachingPortalClient client(std::make_unique<InProcessTransport>(service_.handler()),
                             [&now] { return now; }, /*ttl_seconds=*/10.0);
  FaultProfile blackhole;
  blackhole.drop_rate = 1.0;
  client.EnableUdpValidation(std::make_unique<UdpValidationClient>(
      std::make_unique<FaultInjectingTransport>(service_.validation_handler(),
                                                blackhole, /*seed=*/1),
      FastOptions(), CountingNonce()));

  const auto& view = client.GetExternalView();
  EXPECT_EQ(view.size(), tracker_.num_pids());
  now = 11.0;
  (void)client.GetExternalView();
  // UDP yielded nothing; the TCP conditional request validated the matrix.
  EXPECT_EQ(client.udp_fallback_count(), 1u);
  EXPECT_EQ(client.udp_validation_count(), 0u);
  EXPECT_EQ(client.validation_count(), 1u);
  EXPECT_EQ(client.fetch_count(), 1u);

  // And when prices actually move, the fallback fetches fresh data.
  std::vector<double> traffic(graph_.link_count(), 5e8);
  tracker_.Update(traffic);
  now = 22.0;
  (void)client.GetExternalView();
  EXPECT_EQ(client.fetch_count(), 2u);
  EXPECT_EQ(client.udp_fallback_count(), 2u);
}

TEST_F(UdpValidationTest, CachingClientUdpRedirectTriggersTcpRefetch) {
  // UDP works but reports the token stale: the client must refetch over TCP
  // in the same refresh.
  double now = 0.0;
  CachingPortalClient client(std::make_unique<InProcessTransport>(service_.handler()),
                             [&now] { return now; }, /*ttl_seconds=*/10.0);
  client.EnableUdpValidation(std::make_unique<UdpValidationClient>(
      std::make_unique<FaultInjectingTransport>(service_.validation_handler(),
                                                FaultProfile{}, /*seed=*/1),
      FastOptions(), CountingNonce()));

  (void)client.GetExternalView();
  std::vector<double> traffic(graph_.link_count(), 7e8);
  tracker_.Update(traffic);
  now = 11.0;
  (void)client.GetExternalView();
  EXPECT_EQ(client.fetch_count(), 2u);
  EXPECT_EQ(client.udp_validation_count(), 0u);
  EXPECT_EQ(client.udp_fallback_count(), 0u);  // UDP answered, just "stale"
}

}  // namespace
}  // namespace p4p::proto

#include "proto/wire.h"

#include <gtest/gtest.h>

#include <cmath>

namespace p4p::proto {
namespace {

TEST(Wire, IntegersRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-42);
  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_TRUE(r.done());
}

TEST(Wire, BigEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  ASSERT_EQ(w.bytes().size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[3], 0x04);
}

TEST(Wire, DoublesRoundTrip) {
  Writer w;
  w.f64(3.14159);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(1e-300);
  Reader r(w.bytes());
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_DOUBLE_EQ(r.f64(), -0.0);
  EXPECT_TRUE(std::isinf(r.f64()));
  EXPECT_DOUBLE_EQ(r.f64(), 1e-300);
  EXPECT_TRUE(r.done());
}

TEST(Wire, StringsRoundTrip) {
  Writer w;
  w.str("");
  w.str("hello");
  w.str(std::string(1000, 'x'));
  Reader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str().size(), 1000u);
  EXPECT_TRUE(r.done());
}

TEST(Wire, StringTooLongThrows) {
  Writer w;
  EXPECT_THROW(w.str(std::string(70000, 'x')), std::length_error);
}

TEST(Wire, VectorRoundTrip) {
  Writer w;
  const std::vector<double> v = {1.0, -2.5, 1e9};
  w.f64_vec(v);
  w.f64_vec(std::vector<double>{});
  Reader r(w.bytes());
  EXPECT_EQ(r.f64_vec(), v);
  EXPECT_TRUE(r.f64_vec().empty());
  EXPECT_TRUE(r.done());
}

TEST(Wire, TruncatedReadsFailCleanly) {
  Writer w;
  w.u32(12345);
  for (std::size_t cut = 0; cut < 4; ++cut) {
    Reader r(std::span<const std::uint8_t>(w.bytes().data(), cut));
    r.u32();
    EXPECT_FALSE(r.ok());
    // Further reads stay at zero without UB.
    EXPECT_EQ(r.u8(), 0);
  }
}

TEST(Wire, TruncatedStringFails) {
  Writer w;
  w.str("hello");
  Reader r(std::span<const std::uint8_t>(w.bytes().data(), 4));
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Wire, HostileVectorLengthRejected) {
  // A length prefix of 2^31 must not allocate 16 GiB.
  Writer w;
  w.u32(0x80000000u);
  Reader r(w.bytes());
  EXPECT_TRUE(r.f64_vec().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Wire, DoneDetectsTrailingBytes) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.bytes());
  r.u8();
  EXPECT_FALSE(r.done());
  r.u8();
  EXPECT_TRUE(r.done());
}

TEST(Wire, RemainingTracksPosition) {
  Writer w;
  w.u32(7);
  w.u32(8);
  Reader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(Wire, TakeMovesBuffer) {
  Writer w;
  w.u8(9);
  const auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_TRUE(w.bytes().empty());
}

}  // namespace
}  // namespace p4p::proto

#include "proto/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "proto/messages.h"

namespace p4p::proto {
namespace {

TEST(Wire, IntegersRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-42);
  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_TRUE(r.done());
}

TEST(Wire, BigEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  ASSERT_EQ(w.bytes().size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[3], 0x04);
}

TEST(Wire, DoublesRoundTrip) {
  Writer w;
  w.f64(3.14159);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(1e-300);
  Reader r(w.bytes());
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_DOUBLE_EQ(r.f64(), -0.0);
  EXPECT_TRUE(std::isinf(r.f64()));
  EXPECT_DOUBLE_EQ(r.f64(), 1e-300);
  EXPECT_TRUE(r.done());
}

TEST(Wire, StringsRoundTrip) {
  Writer w;
  w.str("");
  w.str("hello");
  w.str(std::string(1000, 'x'));
  Reader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str().size(), 1000u);
  EXPECT_TRUE(r.done());
}

TEST(Wire, StringTooLongThrows) {
  Writer w;
  EXPECT_THROW(w.str(std::string(70000, 'x')), std::length_error);
}

TEST(Wire, VectorRoundTrip) {
  Writer w;
  const std::vector<double> v = {1.0, -2.5, 1e9};
  w.f64_vec(v);
  w.f64_vec(std::vector<double>{});
  Reader r(w.bytes());
  EXPECT_EQ(r.f64_vec(), v);
  EXPECT_TRUE(r.f64_vec().empty());
  EXPECT_TRUE(r.done());
}

TEST(Wire, TruncatedReadsFailCleanly) {
  Writer w;
  w.u32(12345);
  for (std::size_t cut = 0; cut < 4; ++cut) {
    Reader r(std::span<const std::uint8_t>(w.bytes().data(), cut));
    r.u32();
    EXPECT_FALSE(r.ok());
    // Further reads stay at zero without UB.
    EXPECT_EQ(r.u8(), 0);
  }
}

TEST(Wire, TruncatedStringFails) {
  Writer w;
  w.str("hello");
  Reader r(std::span<const std::uint8_t>(w.bytes().data(), 4));
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Wire, HostileVectorLengthRejected) {
  // A length prefix of 2^31 must not allocate 16 GiB.
  Writer w;
  w.u32(0x80000000u);
  Reader r(w.bytes());
  EXPECT_TRUE(r.f64_vec().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Wire, DoneDetectsTrailingBytes) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.bytes());
  r.u8();
  EXPECT_FALSE(r.done());
  r.u8();
  EXPECT_TRUE(r.done());
}

TEST(Wire, RemainingTracksPosition) {
  Writer w;
  w.u32(7);
  w.u32(8);
  Reader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(Wire, TakeMovesBuffer) {
  Writer w;
  w.u8(9);
  const auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_TRUE(w.bytes().empty());
}

TEST(Wire, VectorEncodeReservesExactly) {
  // The f64_vec appender must pre-reserve its whole footprint: the final
  // buffer capacity equals its size instead of the up-to-2x slack that
  // doubling growth leaves behind.
  for (const std::size_t n : {1u, 7u, 64u, 1000u, 5000u}) {
    Writer w;
    w.f64_vec(std::vector<double>(n, 1.5));
    EXPECT_EQ(w.bytes().capacity(), w.bytes().size()) << "n=" << n;
  }
}

TEST(Wire, RandomMatrixMessagesRoundTripWithTightCapacity) {
  // Fuzz-ish sweep: random matrix payloads of random sizes through the
  // full message codec. Checks (a) exact round-trip, (b) the encoders'
  // reserve() calls keep the final capacity at (or within one small header
  // growth-step of) the final size.
  std::mt19937_64 rng(20260806);
  std::uniform_int_distribution<int> num_pids(1, 40);
  std::uniform_real_distribution<double> dist(0.0, 1e6);
  for (int iter = 0; iter < 50; ++iter) {
    const int n = num_pids(rng);
    GetExternalViewResp view;
    view.num_pids = n;
    view.version = rng();
    view.distances.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    for (auto& d : view.distances) d = dist(rng);

    const auto bytes = Encode(view);
    // version byte + type byte + i32 + u64 + (u32 + 8n^2).
    EXPECT_EQ(bytes.size(), 2u + 4u + 8u + 4u + view.distances.size() * 8u);
    EXPECT_LE(bytes.capacity(), bytes.size() + 32u) << "n=" << n;

    const auto decoded = Decode(bytes);
    ASSERT_TRUE(decoded.has_value());
    const auto* out = std::get_if<GetExternalViewResp>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->num_pids, view.num_pids);
    EXPECT_EQ(out->version, view.version);
    EXPECT_EQ(out->distances, view.distances);

    GetPDistancesResp row;
    row.from = n - 1;
    row.version = rng();
    row.distances.assign(static_cast<std::size_t>(n), dist(rng));
    const auto row_bytes = Encode(row);
    EXPECT_LE(row_bytes.capacity(), row_bytes.size() + 32u) << "n=" << n;
    const auto row_decoded = Decode(row_bytes);
    ASSERT_TRUE(row_decoded.has_value());
    EXPECT_EQ(std::get<GetPDistancesResp>(*row_decoded).distances, row.distances);
  }
}

}  // namespace
}  // namespace p4p::proto

#include "sim/bittorrent.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/topology.h"
#include "sim/stats.h"

namespace p4p::sim {
namespace {

/// Minimal uniform-random selector, keeping sim tests independent of core.
class TestRandomSelector final : public PeerSelector {
 public:
  std::vector<PeerId> SelectPeers(const PeerInfo& client,
                                  std::span<const PeerInfo> candidates, int m,
                                  std::mt19937_64& rng) override {
    std::vector<PeerId> pool;
    for (const auto& c : candidates) {
      if (c.id != client.id) pool.push_back(c.id);
    }
    std::shuffle(pool.begin(), pool.end(), rng);
    if (static_cast<int>(pool.size()) > m) pool.resize(static_cast<std::size_t>(m));
    return pool;
  }
  std::string name() const override { return "TestRandom"; }
};

/// A selector that prefers peers on the client's own PoP.
class TestLocalSelector final : public PeerSelector {
 public:
  std::vector<PeerId> SelectPeers(const PeerInfo& client,
                                  std::span<const PeerInfo> candidates, int m,
                                  std::mt19937_64& rng) override {
    std::vector<PeerId> local;
    std::vector<PeerId> remote;
    for (const auto& c : candidates) {
      if (c.id == client.id) continue;
      (c.node == client.node ? local : remote).push_back(c.id);
    }
    std::shuffle(local.begin(), local.end(), rng);
    std::shuffle(remote.begin(), remote.end(), rng);
    std::vector<PeerId> out;
    for (PeerId id : local) {
      if (static_cast<int>(out.size()) >= m) break;
      out.push_back(id);
    }
    for (PeerId id : remote) {
      if (static_cast<int>(out.size()) >= m) break;
      out.push_back(id);
    }
    return out;
  }
  std::string name() const override { return "TestLocal"; }
};

std::vector<PeerSpec> SmallSwarm(const net::Graph& g, int leechers,
                                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  PopulationConfig cfg;
  cfg.num_peers = leechers;
  for (net::NodeId n = 0; n < static_cast<net::NodeId>(g.node_count()); ++n) {
    cfg.pops.push_back(n);
  }
  cfg.join_window = 30.0;
  auto peers = MakePopulation(cfg, rng);
  PeerSpec seed_peer;
  seed_peer.node = 0;
  seed_peer.as_number = 1;
  seed_peer.up_bps = 100e6;
  seed_peer.down_bps = 100e6;
  seed_peer.join_time = 0.0;
  seed_peer.seed = true;
  peers.push_back(seed_peer);
  return peers;
}

BitTorrentConfig FastConfig() {
  BitTorrentConfig cfg;
  cfg.file_bytes = 2.0 * 1024 * 1024;
  cfg.block_bytes = 256.0 * 1024;
  cfg.horizon = 4000.0;
  cfg.rng_seed = 11;
  return cfg;
}

class BitTorrentSimTest : public ::testing::Test {
 protected:
  BitTorrentSimTest() : graph_(net::MakeAbilene()), routing_(graph_) {}
  net::Graph graph_;
  net::RoutingTable routing_;
};

TEST_F(BitTorrentSimTest, AllPeersCompleteSmallSwarm) {
  const auto peers = SmallSwarm(graph_, 20, 1);
  BitTorrentSimulator sim(graph_, routing_, FastConfig());
  TestRandomSelector selector;
  const auto result = sim.Run(peers, selector);
  EXPECT_DOUBLE_EQ(result.completed_fraction, 1.0);
  EXPECT_EQ(result.completion_times.size(), 20u);
  for (double t : result.completion_times) {
    EXPECT_GT(t, 0.0);
    EXPECT_LT(t, 4000.0);
  }
}

TEST_F(BitTorrentSimTest, ConservationEveryLeecherDownloadsFileSize) {
  const auto peers = SmallSwarm(graph_, 15, 2);
  BitTorrentSimulator sim(graph_, routing_, FastConfig());
  TestRandomSelector selector;
  const auto result = sim.Run(peers, selector);
  // Total transferred bytes equals leechers * file size (stream accounting
  // counts payload bytes exactly once).
  EXPECT_NEAR(result.total_bytes, 15.0 * 2.0 * 1024 * 1024,
              0.01 * result.total_bytes);
}

TEST_F(BitTorrentSimTest, PopTrafficMatrixConsistentWithTotal) {
  const auto peers = SmallSwarm(graph_, 12, 3);
  BitTorrentSimulator sim(graph_, routing_, FastConfig());
  TestRandomSelector selector;
  const auto result = sim.Run(peers, selector);
  double matrix_total = 0.0;
  for (const auto& row : result.pop_traffic) {
    for (double v : row) matrix_total += v;
  }
  EXPECT_NEAR(matrix_total, result.total_bytes, 1.0);
}

TEST_F(BitTorrentSimTest, UnitBdpConsistentWithMatrixAndRouting) {
  const auto peers = SmallSwarm(graph_, 12, 4);
  BitTorrentSimulator sim(graph_, routing_, FastConfig());
  TestRandomSelector selector;
  const auto result = sim.Run(peers, selector);
  double byte_hops = 0.0;
  for (std::size_t i = 0; i < result.pop_traffic.size(); ++i) {
    for (std::size_t j = 0; j < result.pop_traffic.size(); ++j) {
      if (i == j || result.pop_traffic[i][j] == 0.0) continue;
      byte_hops += result.pop_traffic[i][j] *
                   routing_.hop_count(static_cast<net::NodeId>(i),
                                      static_cast<net::NodeId>(j));
    }
  }
  EXPECT_NEAR(byte_hops, result.byte_hops, 1e-3 * std::max(1.0, byte_hops));
  EXPECT_NEAR(result.unit_bdp(), byte_hops / result.total_bytes, 1e-6);
}

TEST_F(BitTorrentSimTest, LinkBytesMatchByteHops) {
  const auto peers = SmallSwarm(graph_, 10, 5);
  BitTorrentSimulator sim(graph_, routing_, FastConfig());
  TestRandomSelector selector;
  const auto result = sim.Run(peers, selector);
  double link_total = 0.0;
  for (double b : result.link_bytes) link_total += b;
  EXPECT_NEAR(link_total, result.byte_hops, 1e-3 * std::max(1.0, link_total));
}

TEST_F(BitTorrentSimTest, LocalSelectorReducesBackboneTraffic) {
  // Concentrate peers on two PoPs so locality has something to exploit.
  std::mt19937_64 rng(6);
  PopulationConfig cfg;
  cfg.num_peers = 30;
  cfg.pops = {net::kNewYork, net::kChicago};
  auto peers = MakePopulation(cfg, rng);
  PeerSpec seed_peer;
  seed_peer.node = net::kNewYork;
  seed_peer.up_bps = 100e6;
  seed_peer.down_bps = 100e6;
  seed_peer.seed = true;
  peers.push_back(seed_peer);

  BitTorrentSimulator sim(graph_, routing_, FastConfig());
  TestRandomSelector random_sel;
  TestLocalSelector local_sel;
  const auto random_result = sim.Run(peers, random_sel);
  const auto local_result = sim.Run(peers, local_sel);
  EXPECT_LT(local_result.unit_bdp(), random_result.unit_bdp());
  EXPECT_DOUBLE_EQ(local_result.completed_fraction, 1.0);
}

TEST_F(BitTorrentSimTest, DeterministicForSameSeed) {
  const auto peers = SmallSwarm(graph_, 15, 7);
  BitTorrentSimulator sim(graph_, routing_, FastConfig());
  TestRandomSelector selector;
  const auto r1 = sim.Run(peers, selector);
  const auto r2 = sim.Run(peers, selector);
  ASSERT_EQ(r1.completion_times.size(), r2.completion_times.size());
  for (std::size_t i = 0; i < r1.completion_times.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.completion_times[i], r2.completion_times[i]);
  }
  EXPECT_DOUBLE_EQ(r1.total_bytes, r2.total_bytes);
}

TEST_F(BitTorrentSimTest, SeedUploadCapLimitsFirstDistribution) {
  // With a slow seed and one leecher, completion is bounded below by
  // file_bytes / seed_upload.
  std::vector<PeerSpec> peers;
  PeerSpec seed_peer;
  seed_peer.node = 0;
  seed_peer.up_bps = 800e3;  // 100 KB/s
  seed_peer.down_bps = 800e3;
  seed_peer.seed = true;
  peers.push_back(seed_peer);
  PeerSpec leecher;
  leecher.node = 5;
  leecher.up_bps = 100e6;
  leecher.down_bps = 100e6;
  leecher.join_time = 0.0;
  peers.push_back(leecher);

  BitTorrentConfig cfg = FastConfig();
  cfg.horizon = 60000.0;
  BitTorrentSimulator sim(graph_, routing_, cfg);
  TestRandomSelector selector;
  const auto result = sim.Run(peers, selector);
  ASSERT_EQ(result.completion_times.size(), 1u);
  const double lower_bound = 2.0 * 1024 * 1024 / (100.0 * 1024);
  EXPECT_GE(result.completion_times[0], lower_bound * 0.95);
}

TEST_F(BitTorrentSimTest, BackgroundTrafficShrinksCapacity) {
  // Saturating background on all links slows the swarm down.
  const auto peers = SmallSwarm(graph_, 12, 8);
  BitTorrentConfig cfg = FastConfig();
  BitTorrentSimulator slow_sim(graph_, routing_, cfg);
  slow_sim.set_background([](net::LinkId, double) { return 9.9e9; });
  BitTorrentSimulator fast_sim(graph_, routing_, cfg);
  TestRandomSelector selector;
  const auto slow = slow_sim.Run(peers, selector);
  const auto fast = fast_sim.Run(peers, selector);
  ASSERT_FALSE(fast.completion_times.empty());
  ASSERT_FALSE(slow.completion_times.empty());
  EXPECT_GT(Mean(slow.completion_times), Mean(fast.completion_times));
}

TEST_F(BitTorrentSimTest, EpochCallbackFires) {
  const auto peers = SmallSwarm(graph_, 10, 9);
  BitTorrentConfig cfg = FastConfig();
  cfg.epoch_interval = 5.0;
  BitTorrentSimulator sim(graph_, routing_, cfg);
  int epochs = 0;
  double traffic_seen = 0.0;
  sim.set_on_epoch([&](double, std::span<const double> rates) {
    ++epochs;
    for (double r : rates) traffic_seen += r;
  });
  TestRandomSelector selector;
  sim.Run(peers, selector);
  EXPECT_GT(epochs, 2);
  EXPECT_GT(traffic_seen, 0.0);
}

TEST_F(BitTorrentSimTest, UtilizationSamplesBounded) {
  const auto peers = SmallSwarm(graph_, 20, 10);
  BitTorrentSimulator sim(graph_, routing_, FastConfig());
  TestRandomSelector selector;
  const auto result = sim.Run(peers, selector);
  ASSERT_FALSE(result.sample_times.empty());
  for (const auto& series : result.link_utilization) {
    ASSERT_EQ(series.size(), result.sample_times.size());
    for (double u : series) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.05);  // small overshoot tolerated from step quantization
    }
  }
}

TEST_F(BitTorrentSimTest, BusiestLinkIdentified) {
  const auto peers = SmallSwarm(graph_, 20, 11);
  BitTorrentSimulator sim(graph_, routing_, FastConfig());
  TestRandomSelector selector;
  const auto result = sim.Run(peers, selector);
  const int busiest = result.busiest_link();
  ASSERT_GE(busiest, 0);
  for (double b : result.link_bytes) {
    EXPECT_LE(b, result.link_bytes[static_cast<std::size_t>(busiest)]);
  }
  const auto series = result.busiest_link_series();
  EXPECT_EQ(series.times.size(), result.sample_times.size());
}

TEST_F(BitTorrentSimTest, ChurnPeersLeavingMidDownload) {
  auto peers = SmallSwarm(graph_, 20, 12);
  // Half the leechers leave early.
  for (std::size_t i = 0; i < 10; ++i) {
    peers[i].leave_time = peers[i].join_time + 20.0;
  }
  BitTorrentConfig cfg = FastConfig();
  cfg.horizon = 8000.0;
  BitTorrentSimulator sim(graph_, routing_, cfg);
  TestRandomSelector selector;
  const auto result = sim.Run(peers, selector);
  // The simulation must terminate and the remaining peers complete.
  EXPECT_GE(result.completion_times.size(), 9u);
  EXPECT_LE(result.completed_fraction, 1.0);
}

TEST_F(BitTorrentSimTest, HorizonCutsOffStragglers) {
  const auto peers = SmallSwarm(graph_, 10, 13);
  BitTorrentConfig cfg = FastConfig();
  cfg.horizon = 5.0;  // far too short to finish
  BitTorrentSimulator sim(graph_, routing_, cfg);
  TestRandomSelector selector;
  const auto result = sim.Run(peers, selector);
  EXPECT_LT(result.completed_fraction, 1.0);
}

TEST_F(BitTorrentSimTest, IntervalVolumesCoverLinkBytes) {
  const auto peers = SmallSwarm(graph_, 12, 14);
  BitTorrentSimulator sim(graph_, routing_, FastConfig());
  TestRandomSelector selector;
  const auto result = sim.Run(peers, selector);
  ASSERT_EQ(result.interval_volumes.size(), graph_.link_count());
  for (std::size_t l = 0; l < graph_.link_count(); ++l) {
    double sum = 0.0;
    for (double v : result.interval_volumes[l]) sum += v;
    EXPECT_NEAR(sum, result.link_bytes[l], 1e-3 * std::max(1.0, sum));
  }
}

TEST_F(BitTorrentSimTest, RejectsBadConfig) {
  BitTorrentConfig cfg;
  cfg.file_bytes = 0;
  EXPECT_THROW(BitTorrentSimulator(graph_, routing_, cfg), std::invalid_argument);
  cfg = BitTorrentConfig{};
  cfg.block_bytes = cfg.file_bytes * 2;
  EXPECT_THROW(BitTorrentSimulator(graph_, routing_, cfg), std::invalid_argument);
  cfg = BitTorrentConfig{};
  cfg.dt = 0;
  EXPECT_THROW(BitTorrentSimulator(graph_, routing_, cfg), std::invalid_argument);
}

TEST_F(BitTorrentSimTest, NoSeedMeansNoCompletion) {
  auto peers = SmallSwarm(graph_, 8, 15);
  peers.pop_back();  // drop the seed
  BitTorrentConfig cfg = FastConfig();
  cfg.horizon = 100.0;
  BitTorrentSimulator sim(graph_, routing_, cfg);
  TestRandomSelector selector;
  const auto result = sim.Run(peers, selector);
  EXPECT_EQ(result.completion_times.size(), 0u);
  EXPECT_DOUBLE_EQ(result.total_bytes, 0.0);
}

TEST_F(BitTorrentSimTest, SelectorRefreshKeepsSwarmHealthy) {
  const auto peers = SmallSwarm(graph_, 15, 16);
  BitTorrentConfig cfg = FastConfig();
  cfg.selector_refresh_interval = 50.0;
  cfg.refresh_drop = 2;
  BitTorrentSimulator sim(graph_, routing_, cfg);
  TestRandomSelector selector;
  const auto result = sim.Run(peers, selector);
  EXPECT_DOUBLE_EQ(result.completed_fraction, 1.0);
}

TEST_F(BitTorrentSimTest, PerPeerCompletionConsistentWithAggregate) {
  const auto peers = SmallSwarm(graph_, 14, 17);
  BitTorrentSimulator sim(graph_, routing_, FastConfig());
  TestRandomSelector selector;
  const auto result = sim.Run(peers, selector);
  ASSERT_EQ(result.per_peer_completion.size(), peers.size());
  std::vector<double> collected;
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (peers[i].seed) {
      EXPECT_LT(result.per_peer_completion[i], 0.0);
    } else if (result.per_peer_completion[i] >= 0.0) {
      collected.push_back(result.per_peer_completion[i]);
    }
  }
  ASSERT_EQ(collected.size(), result.completion_times.size());
  for (std::size_t k = 0; k < collected.size(); ++k) {
    EXPECT_DOUBLE_EQ(collected[k], result.completion_times[k]);
  }
}

TEST_F(BitTorrentSimTest, TcpWindowCapSlowsLongPaths) {
  // One leecher in NY downloading from a Seattle seed: with a tiny window
  // the coast-to-coast RTT caps the rate far below the access line rate.
  std::vector<PeerSpec> peers;
  PeerSpec seed_peer;
  seed_peer.node = net::kSeattle;
  seed_peer.up_bps = 100e6;
  seed_peer.down_bps = 100e6;
  seed_peer.seed = true;
  peers.push_back(seed_peer);
  PeerSpec leecher;
  leecher.node = net::kNewYork;
  leecher.up_bps = 100e6;
  leecher.down_bps = 100e6;
  peers.push_back(leecher);

  BitTorrentConfig cfg = FastConfig();
  cfg.horizon = 20000.0;
  BitTorrentSimulator no_window(graph_, routing_, cfg);
  cfg.tcp_window_bytes = 16.0 * 1024;
  BitTorrentSimulator windowed(graph_, routing_, cfg);
  TestRandomSelector selector;
  const auto fast = no_window.Run(peers, selector);
  const auto slow = windowed.Run(peers, selector);
  ASSERT_EQ(fast.completion_times.size(), 1u);
  ASSERT_EQ(slow.completion_times.size(), 1u);
  EXPECT_GT(slow.completion_times[0], 2.0 * fast.completion_times[0]);
}

TEST_F(BitTorrentSimTest, LossyLinkCapsThroughputViaMathis) {
  // Same pair, clean vs 5% loss on the path: Mathis cap must slow it down.
  net::Graph lossy = net::MakeAbilene();
  for (std::size_t e = 0; e < lossy.link_count(); ++e) {
    lossy.mutable_link(static_cast<net::LinkId>(e)).loss_rate = 0.05;
  }
  const net::RoutingTable lossy_routing(lossy);

  std::vector<PeerSpec> peers;
  PeerSpec seed_peer;
  seed_peer.node = net::kSeattle;
  seed_peer.up_bps = 100e6;
  seed_peer.down_bps = 100e6;
  seed_peer.seed = true;
  peers.push_back(seed_peer);
  PeerSpec leecher;
  leecher.node = net::kNewYork;
  leecher.up_bps = 100e6;
  leecher.down_bps = 100e6;
  peers.push_back(leecher);

  BitTorrentConfig cfg = FastConfig();
  cfg.horizon = 60000.0;
  cfg.tcp_window_bytes = 10.0 * 1024 * 1024;  // window never binds
  BitTorrentSimulator clean_sim(graph_, routing_, cfg);
  BitTorrentSimulator lossy_sim(lossy, lossy_routing, cfg);
  TestRandomSelector selector;
  const auto clean = clean_sim.Run(peers, selector);
  const auto bad = lossy_sim.Run(peers, selector);
  ASSERT_EQ(bad.completion_times.size(), 1u);
  EXPECT_GT(bad.completion_times[0], 1.5 * clean.completion_times[0]);
}

TEST_F(BitTorrentSimTest, SameNodeTransfersIgnoreWindowRtt) {
  // Co-located peers have only access latency; with a moderate window the
  // cap stays above the access rate and completion matches the no-window
  // run closely.
  std::vector<PeerSpec> peers;
  PeerSpec seed_peer;
  seed_peer.node = 0;
  seed_peer.up_bps = 10e6;
  seed_peer.down_bps = 10e6;
  seed_peer.seed = true;
  peers.push_back(seed_peer);
  PeerSpec leecher;
  leecher.node = 0;
  leecher.up_bps = 10e6;
  leecher.down_bps = 10e6;
  peers.push_back(leecher);

  BitTorrentConfig cfg = FastConfig();
  BitTorrentSimulator plain(graph_, routing_, cfg);
  cfg.tcp_window_bytes = 64.0 * 1024;  // 64K/20ms RTT = ~26 Mbps > 10 Mbps
  BitTorrentSimulator windowed(graph_, routing_, cfg);
  TestRandomSelector selector;
  const auto a = plain.Run(peers, selector);
  const auto b = windowed.Run(peers, selector);
  ASSERT_EQ(a.completion_times.size(), 1u);
  ASSERT_EQ(b.completion_times.size(), 1u);
  EXPECT_NEAR(a.completion_times[0], b.completion_times[0],
              0.2 * a.completion_times[0]);
}

}  // namespace
}  // namespace p4p::sim

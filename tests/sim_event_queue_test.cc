#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cmath>

namespace p4p::sim {
namespace {

TEST(EventQueue, StartsEmptyAtZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_TRUE(std::isinf(q.next_time()));
}

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, FifoAmongEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HorizonStopsExecution) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(1.0, [&] { ++ran; });
  q.schedule_at(5.0, [&] { ++ran; });
  EXPECT_EQ(q.run_until(2.0), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, CallbackCanScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) q.schedule_after(1.0, tick);
  };
  q.schedule_at(0.0, tick);
  q.run_until(100.0);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 100.0);
}

TEST(EventQueue, ScheduleAfterIsRelative) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(2.0, [&] { q.schedule_after(3.0, [&] { fired_at = q.now(); }); });
  q.run_until(10.0);
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueue, RejectsPastAndNonFinite) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run_until(5.0);
  EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_at(std::numeric_limits<double>::infinity(), [] {}),
               std::invalid_argument);
  EXPECT_THROW(q.schedule_at(std::nan(""), [] {}), std::invalid_argument);
}

TEST(EventQueue, StepExecutesSingleEvent) {
  EventQueue q;
  int count = 0;
  q.schedule_at(1.0, [&] { ++count; });
  q.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(q.step(10.0));
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
  EXPECT_TRUE(q.step(10.0));
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(q.step(10.0));
}

TEST(EventQueue, StepRespectsHorizon) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  EXPECT_FALSE(q.step(4.0));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  std::vector<double> fired;
  for (int i = 999; i >= 0; --i) {
    const double t = static_cast<double>(i % 97) + static_cast<double>(i) / 1e6;
    q.schedule_at(t, [&fired, &q] { fired.push_back(q.now()); });
  }
  q.run_until(1000.0);
  ASSERT_EQ(fired.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

}  // namespace
}  // namespace p4p::sim

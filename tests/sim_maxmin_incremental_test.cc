// IncrementalMaxMin parity tests: randomized flow/capacity churn checked
// bit-identical against the from-scratch MaxMinFairRates oracle, plus
// component-reuse accounting and validation behavior.
#include "sim/maxmin_incremental.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <random>

#include "sim/maxmin.h"

namespace p4p::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Full-solve reference over the live slots in ascending slot order. The
/// incremental allocator's tie-break gids are order-isomorphic to the
/// oracle's numbering exactly under this enumeration.
void ExpectMatchesOracle(IncrementalMaxMin& inc,
                         const std::vector<double>& capacities,
                         const std::map<int, Flow>& model) {
  std::vector<Flow> flows;
  flows.reserve(model.size());
  for (const auto& [slot, flow] : model) flows.push_back(flow);
  const auto expect = MaxMinFairRates(capacities, flows);
  const auto rates = inc.Rates();
  std::size_t i = 0;
  for (const auto& [slot, flow] : model) {
    // Bitwise equality, not tolerance: the incremental path must replay the
    // exact arithmetic sequence of the full solve.
    EXPECT_EQ(rates[static_cast<std::size_t>(slot)], expect[i])
        << "slot " << slot << " diverged from oracle";
    ++i;
  }
}

TEST(MaxMinIncremental, MatchesOracleOnStaticTopologies) {
  // The classic shapes from sim_maxmin_test, driven through AddFlow.
  {
    IncrementalMaxMin inc({10.0, 4.0});
    const std::vector<int> a = {0}, b = {0, 1};
    inc.AddFlow(a);
    inc.AddFlow(b);
    const auto rates = inc.Rates();
    EXPECT_DOUBLE_EQ(rates[1], 4.0);
    EXPECT_DOUBLE_EQ(rates[0], 6.0);
  }
  {
    IncrementalMaxMin inc({10.0});
    const std::vector<int> l = {0};
    inc.AddFlow(l, 2.0);
    inc.AddFlow(l);
    const auto rates = inc.Rates();
    EXPECT_DOUBLE_EQ(rates[0], 2.0);
    EXPECT_DOUBLE_EQ(rates[1], 8.0);
  }
  {
    // Cap-only flow: its virtual link is the sole bottleneck.
    IncrementalMaxMin inc({});
    inc.AddFlow(std::span<const int>{}, 3.5);
    EXPECT_DOUBLE_EQ(inc.Rates()[0], 3.5);
  }
}

TEST(MaxMinIncremental, RandomChurnBitIdenticalToOracleMultiSeed) {
  for (std::uint32_t seed : {1u, 7u, 42u, 1234u, 99991u}) {
    std::mt19937_64 rng(seed);
    const int num_links = 24;
    std::vector<double> capacities(num_links);
    std::uniform_real_distribution<double> cap_dist(0.5, 50.0);
    for (double& c : capacities) c = cap_dist(rng);

    IncrementalMaxMin inc(capacities);
    std::map<int, Flow> model;  // slot -> flow

    std::uniform_int_distribution<int> op_dist(0, 99);
    std::uniform_int_distribution<int> link_dist(0, num_links - 1);
    std::uniform_int_distribution<int> len_dist(1, 5);

    for (int step = 0; step < 400; ++step) {
      const int op = op_dist(rng);
      if (op < 45 || model.empty()) {
        // Add a flow over distinct random links, sometimes rate-capped.
        const int len = len_dist(rng);
        std::vector<int> links;
        while (static_cast<int>(links.size()) < len) {
          const int l = link_dist(rng);
          if (std::find(links.begin(), links.end(), l) == links.end()) {
            links.push_back(l);
          }
        }
        double cap = kInf;
        if (op_dist(rng) < 40) cap = cap_dist(rng) * 0.2;
        const int slot = inc.AddFlow(links, cap);
        ASSERT_TRUE(model.emplace(slot, Flow{links, cap}).second)
            << "allocator handed out a live slot twice";
      } else if (op < 70) {
        // Remove a random live flow.
        auto it = model.begin();
        std::advance(it, static_cast<long>(rng() % model.size()));
        inc.RemoveFlow(it->first);
        model.erase(it);
      } else if (op < 85) {
        // Retune a rate cap (set, change, or clear).
        auto it = model.begin();
        std::advance(it, static_cast<long>(rng() % model.size()));
        double cap = kInf;
        if (it->second.links.empty() || op_dist(rng) < 70) {
          cap = cap_dist(rng) * 0.2;
        }
        inc.SetRateCap(it->first, cap);
        it->second.rate_cap = cap;
      } else {
        // Change a link capacity.
        const int l = link_dist(rng);
        const double c = cap_dist(rng);
        inc.SetCapacity(l, c);
        capacities[static_cast<std::size_t>(l)] = c;
      }

      // Compare every few steps (and always near the end) so the
      // incremental state is exercised across multi-op dirty batches.
      if (step % 3 == 0 || step > 390) {
        ExpectMatchesOracle(inc, capacities, model);
      }
    }
    ASSERT_GT(inc.recompute_passes(), 0u);
  }
}

TEST(MaxMinIncremental, CleanCallDoesNotRecompute) {
  IncrementalMaxMin inc({10.0, 5.0});
  const std::vector<int> a = {0}, b = {1};
  inc.AddFlow(a);
  inc.AddFlow(b);
  (void)inc.Rates();
  const auto passes = inc.recompute_passes();
  const auto total = inc.total_recomputed_flows();
  const auto r0 = inc.Rates()[0];
  EXPECT_EQ(inc.recompute_passes(), passes);
  EXPECT_EQ(inc.total_recomputed_flows(), total);
  EXPECT_DOUBLE_EQ(r0, 10.0);
}

TEST(MaxMinIncremental, OnlyDirtyComponentIsRecomputed) {
  // Two disjoint components: links {0,1} and links {2,3}.
  IncrementalMaxMin inc({10.0, 10.0, 8.0, 8.0});
  const std::vector<int> a = {0, 1}, b = {0}, c = {2, 3}, d = {2};
  inc.AddFlow(a);
  inc.AddFlow(b);
  const int right1 = inc.AddFlow(c);
  inc.AddFlow(d);
  (void)inc.Rates();
  EXPECT_EQ(inc.last_recomputed_flows(), 4u);

  // Touch only the right component: just its two flows re-solve.
  inc.SetRateCap(right1, 1.5);
  const auto rates = inc.Rates();
  EXPECT_EQ(inc.last_recomputed_flows(), 2u);
  EXPECT_DOUBLE_EQ(rates[static_cast<std::size_t>(right1)], 1.5);
  EXPECT_DOUBLE_EQ(rates[0], 5.0);  // left component untouched

  // Capacity change on link 0: only the left pair re-solves.
  inc.SetCapacity(0, 6.0);
  (void)inc.Rates();
  EXPECT_EQ(inc.last_recomputed_flows(), 2u);
}

TEST(MaxMinIncremental, SlotReuseAfterRemove) {
  IncrementalMaxMin inc({10.0});
  const std::vector<int> l = {0};
  const int s0 = inc.AddFlow(l);
  const int s1 = inc.AddFlow(l);
  inc.RemoveFlow(s0);
  const int s2 = inc.AddFlow(l, 2.0);
  EXPECT_EQ(s2, s0);  // freed slot recycled
  const auto rates = inc.Rates();
  EXPECT_DOUBLE_EQ(rates[static_cast<std::size_t>(s2)], 2.0);
  EXPECT_DOUBLE_EQ(rates[static_cast<std::size_t>(s1)], 8.0);
  EXPECT_EQ(inc.num_flows(), 2u);
}

TEST(MaxMinIncremental, ValidationMatchesOracle) {
  EXPECT_THROW(IncrementalMaxMin({-1.0}), std::invalid_argument);
  IncrementalMaxMin inc({10.0});
  const std::vector<int> unknown = {1};
  const std::vector<int> ok = {0};
  EXPECT_THROW(inc.AddFlow(unknown), std::invalid_argument);
  EXPECT_THROW(inc.AddFlow(ok, -2.0), std::invalid_argument);
  EXPECT_THROW(inc.AddFlow(std::span<const int>{}), std::invalid_argument);
  const int s = inc.AddFlow(ok);
  EXPECT_THROW(inc.SetRateCap(s, -1.0), std::invalid_argument);
  EXPECT_THROW(inc.SetCapacity(0, -1.0), std::invalid_argument);
  // Unknown link: same error contract as every other mutator (not the
  // std::out_of_range a bare capacities_.at() would raise).
  EXPECT_THROW(inc.SetCapacity(1, 5.0), std::invalid_argument);
  EXPECT_THROW(inc.SetCapacity(-1, 5.0), std::invalid_argument);
  inc.RemoveFlow(s);
  EXPECT_THROW(inc.RemoveFlow(s), std::invalid_argument);
  EXPECT_THROW(inc.SetRateCap(s, 1.0), std::invalid_argument);
  // A cap-only flow may never have its cap cleared to infinity.
  const int c = inc.AddFlow(std::span<const int>{}, 2.0);
  EXPECT_THROW(inc.SetRateCap(c, kInf), std::invalid_argument);
}

}  // namespace
}  // namespace p4p::sim

// Solve-path coverage for IncrementalMaxMin: the dense cutover, the
// incremental component path, and the parallel component solve must all be
// bit-identical to the MaxMinFairRates oracle and to each other, at any
// thread count. Every rate comparison here is EXPECT_EQ on doubles — the
// contract is exact arithmetic replay, not tolerance.
#include "sim/maxmin_incremental.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <random>

#include "sim/maxmin.h"

namespace p4p::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct ChurnModel {
  std::vector<double> capacities;
  std::map<int, Flow> flows;  // slot -> flow
};

/// One churn step against `inc`, mirrored into `model`. Biased toward
/// many small disjoint-ish components: flows pick links from a random
/// narrow window so the incidence graph fragments.
void ChurnStep(IncrementalMaxMin& inc, ChurnModel& model, std::mt19937_64& rng) {
  const int num_links = static_cast<int>(model.capacities.size());
  std::uniform_int_distribution<int> op_dist(0, 99);
  std::uniform_real_distribution<double> cap_dist(0.5, 50.0);
  std::uniform_int_distribution<int> link_dist(0, num_links - 1);
  const int op = op_dist(rng);
  if (op < 45 || model.flows.empty()) {
    const int base = link_dist(rng);
    std::uniform_int_distribution<int> len_dist(1, 4);
    const int len = len_dist(rng);
    std::vector<int> links;
    for (int i = 0; i < len; ++i) {
      const int l = (base + i * 3) % num_links;
      if (std::find(links.begin(), links.end(), l) == links.end()) {
        links.push_back(l);
      }
    }
    double cap = kInf;
    if (op_dist(rng) < 35) cap = cap_dist(rng) * 0.2;
    const int slot = inc.AddFlow(links, cap);
    ASSERT_TRUE(model.flows.emplace(slot, Flow{links, cap}).second);
  } else if (op < 70) {
    auto it = model.flows.begin();
    std::advance(it, static_cast<long>(rng() % model.flows.size()));
    inc.RemoveFlow(it->first);
    model.flows.erase(it);
  } else if (op < 85) {
    auto it = model.flows.begin();
    std::advance(it, static_cast<long>(rng() % model.flows.size()));
    double cap = kInf;
    if (it->second.links.empty() || op_dist(rng) < 70) cap = cap_dist(rng) * 0.2;
    inc.SetRateCap(it->first, cap);
    it->second.rate_cap = cap;
  } else {
    const int l = link_dist(rng);
    const double c = cap_dist(rng);
    inc.SetCapacity(l, c);
    model.capacities[static_cast<std::size_t>(l)] = c;
  }
}

void ExpectMatchesOracle(IncrementalMaxMin& inc, const ChurnModel& model) {
  std::vector<Flow> flows;
  flows.reserve(model.flows.size());
  for (const auto& [slot, flow] : model.flows) flows.push_back(flow);
  const auto expect = MaxMinFairRates(model.capacities, flows);
  const auto rates = inc.Rates();
  std::size_t i = 0;
  for (const auto& [slot, flow] : model.flows) {
    EXPECT_EQ(rates[static_cast<std::size_t>(slot)], expect[i])
        << "slot " << slot << " diverged from oracle";
    ++i;
  }
}

/// Runs the shared churn script under one allocator configuration and
/// returns the dense rate vector snapshot after every oracle checkpoint.
std::vector<std::vector<double>> RunChurnScript(double cutover, int threads,
                                                std::uint32_t seed,
                                                bool check_oracle,
                                                IncrementalMaxMin* out_probe
                                                    [[maybe_unused]] = nullptr) {
  std::mt19937_64 rng(seed);
  ChurnModel model;
  model.capacities.assign(32, 0.0);
  std::uniform_real_distribution<double> cap_dist(0.5, 50.0);
  for (double& c : model.capacities) c = cap_dist(rng);

  IncrementalMaxMin inc(model.capacities);
  inc.SetDenseCutover(cutover);
  inc.SetSolverThreads(threads, /*min_parallel_flows=*/0);

  std::vector<std::vector<double>> snapshots;
  for (int step = 0; step < 300; ++step) {
    ChurnStep(inc, model, rng);
    if (step % 4 == 0 || step > 290) {
      if (check_oracle) {
        ExpectMatchesOracle(inc, model);
      }
      const auto rates = inc.Rates();
      snapshots.emplace_back(rates.begin(), rates.end());
    }
  }
  return snapshots;
}

TEST(MaxMinIncrementalPaths, DenseForcedBitIdenticalToOracle) {
  // Cutover 0 forces the dense path on every dirty solve.
  std::mt19937_64 rng(11);
  ChurnModel model;
  model.capacities.assign(24, 0.0);
  std::uniform_real_distribution<double> cap_dist(0.5, 50.0);
  for (double& c : model.capacities) c = cap_dist(rng);
  IncrementalMaxMin inc(model.capacities);
  inc.SetDenseCutover(0.0);
  for (int step = 0; step < 250; ++step) {
    ChurnStep(inc, model, rng);
    if (step % 3 == 0) {
      ExpectMatchesOracle(inc, model);
      // Cutover 0 forces dense whenever any live flow is dirty; the only
      // recomputes allowed to stay incremental are vacuous ones (a dirty
      // link or removed flow whose component has no live flows left).
      if (inc.last_path() == IncrementalMaxMin::SolvePath::kIncremental) {
        EXPECT_EQ(inc.last_recomputed_flows(), 0u);
      }
    }
  }
  EXPECT_GT(inc.dense_solves(), 0u);
}

TEST(MaxMinIncrementalPaths, IncrementalForcedBitIdenticalToOracle) {
  // Cutover >= 1 disables the dense path entirely.
  std::mt19937_64 rng(12);
  ChurnModel model;
  model.capacities.assign(24, 0.0);
  std::uniform_real_distribution<double> cap_dist(0.5, 50.0);
  for (double& c : model.capacities) c = cap_dist(rng);
  IncrementalMaxMin inc(model.capacities);
  inc.SetDenseCutover(2.0);
  for (int step = 0; step < 250; ++step) {
    ChurnStep(inc, model, rng);
    if (step % 3 == 0) ExpectMatchesOracle(inc, model);
  }
  EXPECT_GT(inc.incremental_solves(), 0u);
  EXPECT_EQ(inc.dense_solves(), 0u);
}

TEST(MaxMinIncrementalPaths, AdaptivePathSwitchingStaysExact) {
  // Default cutover: heavy churn bursts go dense, single-flow touches stay
  // incremental, and every switch direction lands on oracle-exact rates.
  std::mt19937_64 rng(13);
  ChurnModel model;
  model.capacities.assign(40, 0.0);
  std::uniform_real_distribution<double> cap_dist(0.5, 50.0);
  for (double& c : model.capacities) c = cap_dist(rng);
  IncrementalMaxMin inc(model.capacities);
  inc.SetDenseCutover(0.5);
  for (int round = 0; round < 40; ++round) {
    // Burst: many mutations at once (dirties a large fraction -> dense).
    for (int i = 0; i < 12; ++i) ChurnStep(inc, model, rng);
    ExpectMatchesOracle(inc, model);
    // Trickle: single mutations (small dirty set -> incremental).
    for (int i = 0; i < 3; ++i) {
      ChurnStep(inc, model, rng);
      ExpectMatchesOracle(inc, model);
    }
  }
  EXPECT_GT(inc.dense_solves(), 0u) << "burst churn never triggered cutover";
  EXPECT_GT(inc.incremental_solves(), 0u) << "trickle churn never stayed incremental";
}

TEST(MaxMinIncrementalPaths, CrossConfigBitIdentical) {
  // The same churn script under forced-dense, adaptive, forced-incremental,
  // and 4-thread configurations must produce byte-for-byte equal snapshots.
  for (std::uint32_t seed : {21u, 22u, 23u}) {
    const auto base = RunChurnScript(0.5, 1, seed, /*check_oracle=*/true);
    const auto dense = RunChurnScript(0.0, 1, seed, false);
    const auto incr = RunChurnScript(2.0, 1, seed, false);
    const auto threaded = RunChurnScript(2.0, 4, seed, false);
    ASSERT_EQ(base.size(), dense.size());
    ASSERT_EQ(base.size(), incr.size());
    ASSERT_EQ(base.size(), threaded.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(base[i], dense[i]) << "dense diverged at checkpoint " << i;
      EXPECT_EQ(base[i], incr[i]) << "incremental diverged at checkpoint " << i;
      EXPECT_EQ(base[i], threaded[i]) << "4-thread diverged at checkpoint " << i;
    }
  }
}

TEST(MaxMinIncrementalPaths, SetCapacityUnknownLinkThrowsInvalidArgument) {
  IncrementalMaxMin inc({1.0, 2.0});
  EXPECT_THROW(inc.SetCapacity(2, 1.0), std::invalid_argument);
  EXPECT_THROW(inc.SetCapacity(-1, 1.0), std::invalid_argument);
  EXPECT_THROW(inc.SetDenseCutover(-0.1), std::invalid_argument);
}

TEST(MaxMinIncrementalPaths, AttributionCountersAdvanceOnRecompute) {
  IncrementalMaxMin inc({10.0, 5.0});
  const std::vector<int> a = {0}, b = {1};
  inc.AddFlow(a);
  inc.AddFlow(b);
  (void)inc.Rates();
  EXPECT_GE(inc.last_gather_ns(), 0);
  EXPECT_GE(inc.last_solve_ns(), 0);
  const auto g1 = inc.total_gather_ns();
  const auto s1 = inc.total_solve_ns();
  // Clean call: attribution untouched.
  (void)inc.Rates();
  EXPECT_EQ(inc.total_gather_ns(), g1);
  EXPECT_EQ(inc.total_solve_ns(), s1);
  // Dirty call: cumulative totals only grow.
  inc.SetCapacity(0, 8.0);
  (void)inc.Rates();
  EXPECT_GE(inc.total_gather_ns(), g1);
  EXPECT_GE(inc.total_solve_ns(), s1);
  EXPECT_EQ(inc.recompute_passes(), 2u);
}

TEST(MaxMinIncrementalParallel, BitIdenticalAcrossThreadCounts) {
  // Many disjoint components (one per link pair), solved at 1/2/4 threads
  // with the parallel floor disabled so the pool actually engages.
  constexpr int kPairs = 64;
  std::vector<double> capacities;
  for (int p = 0; p < kPairs; ++p) {
    capacities.push_back(10.0 + p);
    capacities.push_back(4.0 + 0.25 * p);
  }

  std::vector<std::vector<double>> results;
  std::size_t jobs_seen = 0;
  for (int threads : {1, 2, 4}) {
    IncrementalMaxMin inc(capacities);
    inc.SetDenseCutover(2.0);  // keep it on the component path
    inc.SetSolverThreads(threads, /*min_parallel_flows=*/0);
    std::mt19937_64 rng(77);
    std::uniform_real_distribution<double> cap_dist(0.2, 6.0);
    for (int p = 0; p < kPairs; ++p) {
      const std::vector<int> wide = {2 * p, 2 * p + 1}, narrow = {2 * p};
      inc.AddFlow(wide);
      inc.AddFlow(narrow);
      inc.AddFlow(wide, cap_dist(rng));
    }
    (void)inc.Rates();
    // Re-dirty every component at once so the recompute has kPairs
    // independent jobs, then pull rates.
    for (int p = 0; p < kPairs; ++p) inc.SetCapacity(2 * p + 1, cap_dist(rng));
    const auto rates = inc.Rates();
    results.emplace_back(rates.begin(), rates.end());
    EXPECT_EQ(inc.last_components(), static_cast<std::size_t>(kPairs));
    if (threads > 1) {
      EXPECT_EQ(inc.last_parallel_jobs(), static_cast<std::size_t>(kPairs))
          << "pool never engaged at " << threads << " threads";
      jobs_seen += inc.last_parallel_jobs();
    } else {
      EXPECT_EQ(inc.last_parallel_jobs(), 0u);
    }
  }
  ASSERT_GT(jobs_seen, 0u);
  EXPECT_EQ(results[0], results[1]) << "2-thread rates diverged from 1-thread";
  EXPECT_EQ(results[0], results[2]) << "4-thread rates diverged from 1-thread";
}

TEST(MaxMinIncrementalParallel, ParallelMatchesOracleUnderChurn) {
  // Fragmented churn with the pool always on: exact oracle parity.
  std::mt19937_64 rng(31);
  ChurnModel model;
  model.capacities.assign(48, 0.0);
  std::uniform_real_distribution<double> cap_dist(0.5, 50.0);
  for (double& c : model.capacities) c = cap_dist(rng);
  IncrementalMaxMin inc(model.capacities);
  inc.SetDenseCutover(2.0);
  inc.SetSolverThreads(4, /*min_parallel_flows=*/0);
  for (int step = 0; step < 300; ++step) {
    ChurnStep(inc, model, rng);
    if (step % 4 == 0) ExpectMatchesOracle(inc, model);
  }
  EXPECT_GT(inc.parallel_passes(), 0u) << "churn never produced a parallel pass";
}

TEST(MaxMinIncrementalParallel, PoolReconfigureMidStream) {
  // Shrinking/growing the pool between recomputes keeps rates exact.
  IncrementalMaxMin inc({10.0, 8.0, 6.0, 4.0});
  const std::vector<int> a = {0, 1}, b = {2, 3};
  const int fa = inc.AddFlow(a);
  inc.AddFlow(b);
  inc.SetSolverThreads(4, 0);
  const auto r1 = inc.Rates();
  const std::vector<double> snap1(r1.begin(), r1.end());
  inc.SetSolverThreads(2, 0);
  inc.SetRateCap(fa, 3.0);
  inc.SetCapacity(3, 5.0);
  (void)inc.Rates();
  inc.SetSolverThreads(1, 0);
  inc.SetRateCap(fa, kInf);
  inc.SetCapacity(3, 4.0);
  const auto r3 = inc.Rates();
  const std::vector<double> snap3(r3.begin(), r3.end());
  EXPECT_EQ(snap1, snap3) << "round-trip through pool reconfigs changed rates";
}

}  // namespace
}  // namespace p4p::sim

#include "sim/maxmin.h"

#include <gtest/gtest.h>

#include <random>

namespace p4p::sim {
namespace {

constexpr double kTol = 1e-6;

TEST(MaxMin, SingleFlowGetsFullLink) {
  const std::vector<double> caps = {10.0};
  const std::vector<Flow> flows = {{{0}, std::numeric_limits<double>::infinity()}};
  const auto rates = MaxMinFairRates(caps, flows);
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_NEAR(rates[0], 10.0, kTol);
}

TEST(MaxMin, EqualShareOnSharedLink) {
  const std::vector<double> caps = {9.0};
  const std::vector<Flow> flows = {{{0}, std::numeric_limits<double>::infinity()}, {{0}, std::numeric_limits<double>::infinity()}, {{0}, std::numeric_limits<double>::infinity()}};
  const auto rates = MaxMinFairRates(caps, flows);
  for (double r : rates) EXPECT_NEAR(r, 3.0, kTol);
}

TEST(MaxMin, ClassicTwoBottleneckExample) {
  // Link 0 cap 10 shared by flows A,B; link 1 cap 4 used by B only.
  // B is capped at 4 by link 1; A gets the residual 6.
  const std::vector<double> caps = {10.0, 4.0};
  const std::vector<Flow> flows = {{{0}, std::numeric_limits<double>::infinity()}, {{0, 1}, std::numeric_limits<double>::infinity()}};
  const auto rates = MaxMinFairRates(caps, flows);
  EXPECT_NEAR(rates[1], 4.0, kTol);
  EXPECT_NEAR(rates[0], 6.0, kTol);
}

TEST(MaxMin, ThreeLinkChainParkingLot) {
  // Parking-lot: long flow over links 0,1,2 (cap 1 each) + one short flow
  // per link. Each link splits 0.5/0.5.
  const std::vector<double> caps = {1.0, 1.0, 1.0};
  const std::vector<Flow> flows = {
      {{0, 1, 2}, std::numeric_limits<double>::infinity()}, {{0}, std::numeric_limits<double>::infinity()}, {{1}, std::numeric_limits<double>::infinity()}, {{2}, std::numeric_limits<double>::infinity()}};
  const auto rates = MaxMinFairRates(caps, flows);
  EXPECT_NEAR(rates[0], 0.5, kTol);
  for (int f = 1; f < 4; ++f) EXPECT_NEAR(rates[static_cast<std::size_t>(f)], 0.5, kTol);
}

TEST(MaxMin, RateCapActsAsVirtualLink) {
  const std::vector<double> caps = {10.0};
  std::vector<Flow> flows = {{{0}, 2.0}, {{0}, std::numeric_limits<double>::infinity()}};
  const auto rates = MaxMinFairRates(caps, flows);
  EXPECT_NEAR(rates[0], 2.0, kTol);
  EXPECT_NEAR(rates[1], 8.0, kTol);
}

TEST(MaxMin, CapOnlyFlowIsAllowed) {
  std::vector<Flow> flows = {{{}, 3.5}};
  const auto rates = MaxMinFairRates(std::vector<double>{}, flows);
  EXPECT_NEAR(rates[0], 3.5, kTol);
}

TEST(MaxMin, UncappedFlowWithNoLinksThrows) {
  std::vector<Flow> flows = {{{}, std::numeric_limits<double>::infinity()}};
  EXPECT_THROW(MaxMinFairRates(std::vector<double>{}, flows), std::invalid_argument);
}

TEST(MaxMin, RejectsNegativeCapacity) {
  const std::vector<double> caps = {-1.0};
  std::vector<Flow> flows = {{{0}, std::numeric_limits<double>::infinity()}};
  EXPECT_THROW(MaxMinFairRates(caps, flows), std::invalid_argument);
}

TEST(MaxMin, RejectsUnknownLink) {
  const std::vector<double> caps = {1.0};
  std::vector<Flow> flows = {{{3}, std::numeric_limits<double>::infinity()}};
  EXPECT_THROW(MaxMinFairRates(caps, flows), std::invalid_argument);
}

TEST(MaxMin, RejectsNegativeRateCap) {
  const std::vector<double> caps = {1.0};
  std::vector<Flow> flows = {{{0}, -2.0}};
  EXPECT_THROW(MaxMinFairRates(caps, flows), std::invalid_argument);
}

TEST(MaxMin, ZeroCapacityLinkGivesZeroRates) {
  const std::vector<double> caps = {0.0, 5.0};
  std::vector<Flow> flows = {{{0, 1}, std::numeric_limits<double>::infinity()}, {{1}, std::numeric_limits<double>::infinity()}};
  const auto rates = MaxMinFairRates(caps, flows);
  EXPECT_NEAR(rates[0], 0.0, kTol);
  EXPECT_NEAR(rates[1], 5.0, kTol);
}

TEST(MaxMin, NoFlowsYieldsEmpty) {
  const std::vector<double> caps = {1.0};
  EXPECT_TRUE(MaxMinFairRates(caps, std::vector<Flow>{}).empty());
}

TEST(MaxMin, UnusedLinksAreIgnored) {
  const std::vector<double> caps = {1.0, 99.0};
  std::vector<Flow> flows = {{{0}, std::numeric_limits<double>::infinity()}};
  const auto rates = MaxMinFairRates(caps, flows);
  EXPECT_NEAR(rates[0], 1.0, kTol);
}

// ---- property-based validation against the max-min definition ----

struct RandomCase {
  int num_links;
  int num_flows;
  std::uint64_t seed;
};

class MaxMinPropertyTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(MaxMinPropertyTest, FeasibleAndMaxMin) {
  const auto& param = GetParam();
  std::mt19937_64 rng(param.seed);
  std::uniform_real_distribution<double> cap(1.0, 20.0);
  std::uniform_int_distribution<int> link_count(1, 4);
  std::uniform_int_distribution<int> link_pick(0, param.num_links - 1);

  std::vector<double> caps(static_cast<std::size_t>(param.num_links));
  for (auto& c : caps) c = cap(rng);
  std::vector<Flow> flows(static_cast<std::size_t>(param.num_flows));
  for (auto& f : flows) {
    const int k = link_count(rng);
    for (int i = 0; i < k; ++i) {
      const int l = link_pick(rng);
      if (std::find(f.links.begin(), f.links.end(), l) == f.links.end()) {
        f.links.push_back(l);
      }
    }
    if (f.links.empty()) f.links.push_back(link_pick(rng));
  }

  const auto rates = MaxMinFairRates(caps, flows);
  ASSERT_EQ(rates.size(), flows.size());

  // Feasibility: per-link loads within capacity.
  std::vector<double> load(caps.size(), 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_GE(rates[f], -kTol);
    for (int l : flows[f].links) load[static_cast<std::size_t>(l)] += rates[f];
  }
  for (std::size_t l = 0; l < caps.size(); ++l) {
    EXPECT_LE(load[l], caps[l] + 1e-4);
  }

  // Max-min property: every flow has a bottleneck link that is saturated and
  // on which it has a maximal rate.
  for (std::size_t f = 0; f < flows.size(); ++f) {
    bool has_bottleneck = false;
    for (int l : flows[f].links) {
      const auto lu = static_cast<std::size_t>(l);
      if (load[lu] < caps[lu] - 1e-4) continue;  // not saturated
      double max_rate_on_l = 0.0;
      for (std::size_t f2 = 0; f2 < flows.size(); ++f2) {
        if (std::find(flows[f2].links.begin(), flows[f2].links.end(), l) !=
            flows[f2].links.end()) {
          max_rate_on_l = std::max(max_rate_on_l, rates[f2]);
        }
      }
      if (rates[f] >= max_rate_on_l - 1e-4) {
        has_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck) << "flow " << f << " has no bottleneck";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, MaxMinPropertyTest,
    ::testing::Values(RandomCase{3, 5, 1}, RandomCase{5, 10, 2}, RandomCase{8, 30, 3},
                      RandomCase{10, 100, 4}, RandomCase{20, 200, 5},
                      RandomCase{4, 50, 6}, RandomCase{30, 300, 7}));

// ---- workspace fast path: stress + reuse determinism ----

TEST(MaxMinWorkspace, StressSharedBottlenecksWithRateCaps) {
  // >= 500 flows over a small link set so bottlenecks are heavily shared;
  // half the flows carry a finite rate cap. Checks feasibility, bottleneck
  // saturation, and that the workspace matches the one-shot API while
  // giving bit-identical rates across repeated reuse.
  constexpr int kNumLinks = 40;
  constexpr int kNumFlows = 600;
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> cap(5.0, 50.0);
  std::uniform_int_distribution<int> link_pick(0, kNumLinks - 1);
  std::uniform_int_distribution<int> len_pick(1, 5);

  std::vector<double> caps(kNumLinks);
  for (auto& c : caps) c = cap(rng);
  std::vector<Flow> flows(kNumFlows);
  for (int f = 0; f < kNumFlows; ++f) {
    const int len = len_pick(rng);
    // Link 0 is a shared bottleneck for every third flow.
    if (f % 3 == 0) flows[static_cast<std::size_t>(f)].links.push_back(0);
    for (int k = 0; k < len; ++k) {
      const int l = link_pick(rng);
      auto& ls = flows[static_cast<std::size_t>(f)].links;
      if (std::find(ls.begin(), ls.end(), l) == ls.end()) ls.push_back(l);
    }
    if (f % 2 == 0) flows[static_cast<std::size_t>(f)].rate_cap = 0.05 + 0.01 * (f % 7);
  }

  const auto reference = MaxMinFairRates(caps, flows);

  std::vector<FlowSpec> specs;
  for (const Flow& f : flows) specs.push_back(FlowSpec{f.links, f.rate_cap});
  MaxMinWorkspace ws;
  const auto first_span = ws.Compute(caps, specs);
  const std::vector<double> first(first_span.begin(), first_span.end());
  ASSERT_EQ(first.size(), reference.size());
  for (std::size_t f = 0; f < first.size(); ++f) {
    EXPECT_EQ(first[f], reference[f]) << "workspace diverges from one-shot at flow " << f;
  }
  for (int repeat = 0; repeat < 5; ++repeat) {
    const auto again = ws.Compute(caps, specs);
    for (std::size_t f = 0; f < first.size(); ++f) {
      EXPECT_EQ(again[f], first[f]) << "reused workspace not bit-identical at flow " << f;
    }
  }

  // Feasibility + rate caps respected.
  std::vector<double> load(caps.size(), 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_GE(reference[f], 0.0);
    EXPECT_LE(reference[f], flows[f].rate_cap + kTol);
    for (int l : flows[f].links) load[static_cast<std::size_t>(l)] += reference[f];
  }
  for (std::size_t l = 0; l < caps.size(); ++l) EXPECT_LE(load[l], caps[l] + 1e-4);

  // The shared link 0 must be saturated: it carries 200 uncapped-or-capped
  // flows against a capacity of at most 50.
  EXPECT_NEAR(load[0], caps[0], 1e-4);

  // Max-min: every flow is either at its cap or has a saturated bottleneck
  // on which no other flow gets a higher rate.
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (reference[f] >= flows[f].rate_cap - kTol) continue;
    bool has_bottleneck = false;
    for (int l : flows[f].links) {
      const auto lu = static_cast<std::size_t>(l);
      if (load[lu] < caps[lu] - 1e-4) continue;
      double max_rate_on_l = 0.0;
      for (std::size_t f2 = 0; f2 < flows.size(); ++f2) {
        if (std::find(flows[f2].links.begin(), flows[f2].links.end(), l) !=
            flows[f2].links.end()) {
          max_rate_on_l = std::max(max_rate_on_l, reference[f2]);
        }
      }
      if (reference[f] >= max_rate_on_l - 1e-4) {
        has_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck) << "flow " << f << " below cap with no bottleneck";
  }
}

TEST(MaxMinWorkspace, ValidatesLikeOneShotApi) {
  MaxMinWorkspace ws;
  const std::vector<double> caps = {1.0};
  std::vector<int> bad_link = {3};
  std::vector<FlowSpec> unknown = {FlowSpec{bad_link, std::numeric_limits<double>::infinity()}};
  EXPECT_THROW(ws.Compute(caps, unknown), std::invalid_argument);
  std::vector<FlowSpec> unbounded = {FlowSpec{{}, std::numeric_limits<double>::infinity()}};
  EXPECT_THROW(ws.Compute(caps, unbounded), std::invalid_argument);
  std::vector<int> ok_link = {0};
  std::vector<FlowSpec> negative_cap = {FlowSpec{ok_link, -1.0}};
  EXPECT_THROW(ws.Compute(caps, negative_cap), std::invalid_argument);
  // The workspace stays usable after a failed call.
  std::vector<FlowSpec> fine = {FlowSpec{ok_link, std::numeric_limits<double>::infinity()}};
  EXPECT_NEAR(ws.Compute(caps, fine)[0], 1.0, kTol);
}

TEST(MaxMinAllocator, WrapsCapacities) {
  MaxMinAllocator alloc({4.0, 8.0});
  EXPECT_EQ(alloc.num_links(), 2u);
  EXPECT_DOUBLE_EQ(alloc.capacity(1), 8.0);
  alloc.set_capacity(1, 16.0);
  const std::vector<Flow> flows = {{{1}, std::numeric_limits<double>::infinity()}};
  EXPECT_NEAR(alloc.allocate(flows)[0], 16.0, kTol);
}

}  // namespace
}  // namespace p4p::sim

// Sharded multi-swarm runner: same jobs + same seeds must merge to
// bit-identical results regardless of worker thread count, and the
// in-simulator incremental max-min must match sampled full solves bitwise.
#include "sim/swarm_shard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "net/topology.h"
#include "sim/workload.h"

namespace p4p::sim {
namespace {

class ShardRandomSelector final : public PeerSelector {
 public:
  std::vector<PeerId> SelectPeers(const PeerInfo& client,
                                  std::span<const PeerInfo> candidates, int m,
                                  std::mt19937_64& rng) override {
    std::vector<PeerId> pool;
    for (const auto& c : candidates) {
      if (c.id != client.id) pool.push_back(c.id);
    }
    std::shuffle(pool.begin(), pool.end(), rng);
    if (static_cast<int>(pool.size()) > m) pool.resize(static_cast<std::size_t>(m));
    return pool;
  }
  std::string name() const override { return "ShardRandom"; }
};

std::vector<SwarmJob> MakeJobs(const net::Graph& graph) {
  std::vector<SwarmJob> jobs;
  const int sizes[] = {18, 9, 25, 6};
  for (int j = 0; j < 4; ++j) {
    std::mt19937_64 rng(100 + static_cast<std::uint64_t>(j));
    PopulationConfig pop;
    pop.num_peers = sizes[j];
    for (net::NodeId n = 0; n < static_cast<net::NodeId>(graph.node_count()); ++n) {
      pop.pops.push_back(n);
    }
    pop.join_window = 40.0;
    SwarmJob job;
    job.peers = MakePopulation(pop, rng);
    if (j == 2) {
      // One churny swarm: a third of the leechers leave mid-download.
      for (std::size_t i = 0; i < job.peers.size(); i += 3) {
        job.peers[i].leave_time = job.peers[i].join_time + 120.0;
      }
    }
    PeerSpec seed_peer;
    seed_peer.node = 0;
    seed_peer.as_number = 1;
    seed_peer.up_bps = 100e6;
    seed_peer.down_bps = 100e6;
    seed_peer.seed = true;
    job.peers.push_back(seed_peer);
    job.config.file_bytes = 2.0 * 1024 * 1024;
    job.config.block_bytes = 256.0 * 1024;
    job.config.horizon = 4000.0;
    job.config.rng_seed = 77 + static_cast<std::uint64_t>(j);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// Asserts every deterministic field matches exactly. Wall-clock
/// instrumentation (the *_ns fields, wall_seconds) is explicitly excluded.
void ExpectBitIdentical(const BitTorrentResult& a, const BitTorrentResult& b) {
  ASSERT_EQ(a.completion_times.size(), b.completion_times.size());
  for (std::size_t i = 0; i < a.completion_times.size(); ++i) {
    EXPECT_EQ(a.completion_times[i], b.completion_times[i]);
  }
  ASSERT_EQ(a.per_peer_completion.size(), b.per_peer_completion.size());
  for (std::size_t i = 0; i < a.per_peer_completion.size(); ++i) {
    EXPECT_EQ(a.per_peer_completion[i], b.per_peer_completion[i]);
  }
  EXPECT_EQ(a.completed_fraction, b.completed_fraction);
  ASSERT_EQ(a.link_bytes.size(), b.link_bytes.size());
  for (std::size_t l = 0; l < a.link_bytes.size(); ++l) {
    EXPECT_EQ(a.link_bytes[l], b.link_bytes[l]);
  }
  EXPECT_EQ(a.sample_times, b.sample_times);
  EXPECT_EQ(a.pop_traffic, b.pop_traffic);
  EXPECT_EQ(a.interval_volumes, b.interval_volumes);
  EXPECT_EQ(a.byte_hops, b.byte_hops);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.maxmin_full_samples, b.maxmin_full_samples);
  EXPECT_EQ(a.maxmin_parity_mismatches, b.maxmin_parity_mismatches);
  EXPECT_EQ(a.maxmin_dirty_steps, b.maxmin_dirty_steps);
}

TEST(MultiSwarm, ThreadCountDoesNotChangeResults) {
  const auto graph = net::MakeAbilene();
  const net::RoutingTable routing(graph);
  const auto jobs = MakeJobs(graph);
  const auto factory = [](std::size_t) -> std::unique_ptr<PeerSelector> {
    return std::make_unique<ShardRandomSelector>();
  };
  const auto r1 = RunSwarms(graph, routing, jobs, factory, 1);
  const auto r2 = RunSwarms(graph, routing, jobs, factory, 2);
  const auto r4 = RunSwarms(graph, routing, jobs, factory, 4);
  ASSERT_EQ(r1.swarms.size(), jobs.size());
  ASSERT_EQ(r2.swarms.size(), jobs.size());
  ASSERT_EQ(r4.swarms.size(), jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    ExpectBitIdentical(r1.swarms[j], r2.swarms[j]);
    ExpectBitIdentical(r1.swarms[j], r4.swarms[j]);
  }
  EXPECT_GT(r1.total_bytes(), 0.0);
  EXPECT_EQ(r1.total_rounds(), r4.total_rounds());
}

TEST(MultiSwarm, ShardMatchesDirectRun) {
  const auto graph = net::MakeAbilene();
  const net::RoutingTable routing(graph);
  const auto jobs = MakeJobs(graph);
  const auto factory = [](std::size_t) -> std::unique_ptr<PeerSelector> {
    return std::make_unique<ShardRandomSelector>();
  };
  const auto sharded = RunSwarms(graph, routing, jobs, factory, 3);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    BitTorrentSimulator sim(graph, routing, jobs[j].config);
    ShardRandomSelector selector;
    const auto direct = sim.Run(jobs[j].peers, selector);
    ExpectBitIdentical(direct, sharded.swarms[j]);
  }
}

TEST(MultiSwarm, IncrementalMaxMinMatchesFullSolveInsideSwarm) {
  // Drive a real swarm with periodic full-solve parity checks: every sampled
  // step the incremental rates must equal a from-scratch solve bitwise.
  const auto graph = net::MakeAbilene();
  const net::RoutingTable routing(graph);
  auto jobs = MakeJobs(graph);
  for (auto& job : jobs) job.config.maxmin_full_sample_every = 3;
  const auto factory = [](std::size_t) -> std::unique_ptr<PeerSelector> {
    return std::make_unique<ShardRandomSelector>();
  };
  const auto res = RunSwarms(graph, routing, jobs, factory, 2);
  for (const auto& r : res.swarms) {
    EXPECT_GT(r.maxmin_full_samples, 0);
    EXPECT_EQ(r.maxmin_parity_mismatches, 0);
    EXPECT_LE(r.maxmin_dirty_steps, r.rounds);
    EXPECT_GT(r.rounds, 0);
  }
}

}  // namespace
}  // namespace p4p::sim

#include "sim/peer_buckets.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>

namespace p4p::sim {
namespace {

PeerInfo MakePeer(PeerId id, net::NodeId pid, std::int32_t as_number) {
  PeerInfo p;
  p.id = id;
  p.node = pid;
  p.as_number = as_number;
  p.up_bps = 1e6;
  p.down_bps = 1e6;
  return p;
}

TEST(PeerBuckets, InsertGroupsByAsAndPid) {
  PeerBuckets store;
  store.Insert(MakePeer(0, 3, 1));
  store.Insert(MakePeer(1, 3, 1));
  store.Insert(MakePeer(2, 4, 1));
  store.Insert(MakePeer(3, 3, 2));  // same PID number, different AS

  EXPECT_EQ(store.size(), 4u);
  ASSERT_EQ(store.buckets().size(), 3u);

  const auto b0 = store.BucketOf(1, 3);
  const auto b1 = store.BucketOf(1, 4);
  const auto b2 = store.BucketOf(2, 3);
  ASSERT_NE(b0, PeerBuckets::npos);
  ASSERT_NE(b1, PeerBuckets::npos);
  ASSERT_NE(b2, PeerBuckets::npos);
  EXPECT_EQ(store.buckets()[b0].peers.size(), 2u);
  EXPECT_EQ(store.buckets()[b1].peers.size(), 1u);
  EXPECT_EQ(store.buckets()[b2].peers.size(), 1u);
  EXPECT_EQ(store.BucketOf(1, 99), PeerBuckets::npos);

  const auto as1 = store.AsGroup(1);
  EXPECT_EQ(as1.size(), 2u);
  EXPECT_EQ(store.AsGroup(2).size(), 1u);
  EXPECT_TRUE(store.AsGroup(99).empty());
}

TEST(PeerBuckets, DuplicateIdThrows) {
  PeerBuckets store;
  store.Insert(MakePeer(7, 0, 1));
  EXPECT_THROW(store.Insert(MakePeer(7, 1, 1)), std::invalid_argument);
  EXPECT_EQ(store.size(), 1u);
}

TEST(PeerBuckets, EraseSwapAndPopFixesDisplacedSlot) {
  PeerBuckets store;
  for (PeerId id = 0; id < 4; ++id) store.Insert(MakePeer(id, 0, 1));
  // Erase the first slot: the last peer must be swapped in and its slot
  // index updated so a follow-up erase still works in O(1).
  ASSERT_TRUE(store.Erase(0));
  const auto slot = store.SlotOf(3);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(slot->index, 0u);
  ASSERT_TRUE(store.Erase(3));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains(1));
  EXPECT_TRUE(store.Contains(2));
  EXPECT_FALSE(store.Erase(0));  // double-erase is a no-op
}

TEST(PeerBuckets, EmptiedBucketPersistsAndAcceptsRejoins) {
  PeerBuckets store;
  store.Insert(MakePeer(0, 5, 1));
  const auto b = store.BucketOf(1, 5);
  ASSERT_TRUE(store.Erase(0));
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.BucketOf(1, 5), b);  // bucket survives, just empty
  store.Insert(MakePeer(1, 5, 1));
  EXPECT_EQ(store.SlotOf(1)->bucket, b);
}

TEST(PeerBuckets, FlattenRoundTrips) {
  PeerBuckets store;
  for (PeerId id = 0; id < 10; ++id) store.Insert(MakePeer(id, id % 3, 1 + id % 2));
  std::vector<PeerInfo> flat;
  store.Flatten(flat);
  ASSERT_EQ(flat.size(), 10u);
  std::set<PeerId> ids;
  for (const auto& p : flat) ids.insert(p.id);
  EXPECT_EQ(ids.size(), 10u);
}

// --- randomized ops vs a flat-vector oracle ---------------------------------
//
// Seeded and replayable: any failure reproduces bit-identically from the
// seed printed in the test name.

class PeerBucketsOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PeerBucketsOracleTest, MatchesFlatVectorUnderRandomChurn) {
  std::mt19937_64 rng(GetParam());
  PeerBuckets store;
  std::vector<PeerInfo> oracle;  // flat membership oracle
  PeerId next_id = 0;

  std::uniform_int_distribution<int> pid_dist(0, 7);
  std::uniform_int_distribution<int> as_dist(1, 3);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  for (int op = 0; op < 4000; ++op) {
    const bool do_insert = oracle.empty() || coin(rng) < 0.6;
    if (do_insert) {
      const auto peer = MakePeer(next_id++, pid_dist(rng), as_dist(rng));
      store.Insert(peer);
      oracle.push_back(peer);
    } else {
      std::uniform_int_distribution<std::size_t> which(0, oracle.size() - 1);
      const std::size_t i = which(rng);
      const PeerId victim = oracle[i].id;
      ASSERT_TRUE(store.Erase(victim));
      oracle[i] = oracle.back();
      oracle.pop_back();
      // Ids are never reused by the announce plane; erased ids stay gone.
      EXPECT_FALSE(store.Contains(victim));
      EXPECT_FALSE(store.Erase(victim));
    }

    ASSERT_EQ(store.size(), oracle.size());
  }

  // Final deep check: same membership, and every peer sits in the bucket
  // matching its (AS, PID) at the slot its index claims.
  std::map<PeerId, PeerInfo> expected;
  for (const auto& p : oracle) expected[p.id] = p;

  std::size_t seen = 0;
  for (std::size_t b = 0; b < store.buckets().size(); ++b) {
    const auto& bucket = store.buckets()[b];
    for (std::size_t i = 0; i < bucket.peers.size(); ++i) {
      const auto& p = bucket.peers[i];
      ++seen;
      ASSERT_TRUE(expected.count(p.id)) << "ghost peer " << p.id;
      EXPECT_EQ(p.node, bucket.pid);
      EXPECT_EQ(p.as_number, bucket.as_number);
      EXPECT_EQ(expected[p.id].node, p.node);
      EXPECT_EQ(expected[p.id].as_number, p.as_number);
      const auto slot = store.SlotOf(p.id);
      ASSERT_TRUE(slot.has_value());
      EXPECT_EQ(slot->bucket, b);
      EXPECT_EQ(slot->index, i);
    }
  }
  EXPECT_EQ(seen, expected.size());

  // AS groups partition the buckets exactly.
  std::set<std::uint32_t> grouped;
  for (std::int32_t as = 1; as <= 3; ++as) {
    for (std::uint32_t b : store.AsGroup(as)) {
      EXPECT_EQ(store.buckets()[b].as_number, as);
      EXPECT_TRUE(grouped.insert(b).second) << "bucket listed twice";
    }
  }
  EXPECT_EQ(grouped.size(), store.buckets().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeerBucketsOracleTest,
                         ::testing::Values(1u, 42u, 20260808u, 0xdeadbeefu));

}  // namespace
}  // namespace p4p::sim

#include "sim/stats.h"

#include <gtest/gtest.h>

namespace p4p::sim {
namespace {

TEST(Percentile, MedianOfOddSet) {
  const std::vector<double> v = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 3.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v = {2.0, 4.0, 6.0, 8.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 8.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 5.0);
}

TEST(Percentile, SingleSample) {
  const std::vector<double> v = {7.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 95.0), 7.0);
}

TEST(Percentile, Rejects) {
  const std::vector<double> v = {1.0};
  EXPECT_THROW(Percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(Percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW(Percentile(v, 101.0), std::invalid_argument);
}

TEST(Mean, Basic) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.0);
  EXPECT_THROW(Mean({}), std::invalid_argument);
}

TEST(Cdf, SortsAndFractions) {
  const std::vector<double> v = {3.0, 1.0, 2.0, 2.0};
  const Cdf cdf = Cdf::FromSamples(v);
  EXPECT_EQ(cdf.values, (std::vector<double>{1.0, 2.0, 2.0, 3.0}));
  EXPECT_DOUBLE_EQ(cdf.fractions.back(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fractions.front(), 0.25);
}

TEST(Cdf, AtReturnsFractionBelow) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const Cdf cdf = Cdf::FromSamples(v);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
}

TEST(TimeSeries, MaxAndTimeAbove) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) {
    ts.add(static_cast<double>(i), i < 5 ? 0.2 : 0.9);
  }
  EXPECT_DOUBLE_EQ(ts.max(), 0.9);
  EXPECT_NEAR(ts.time_above(0.5), 5.0, 1e-9);
  EXPECT_NEAR(ts.time_above(0.95), 0.0, 1e-9);
}

TEST(TimeSeries, TimeAboveWithFewSamples) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.time_above(0.5), 0.0);
  ts.add(0.0, 1.0);
  EXPECT_DOUBLE_EQ(ts.time_above(0.5), 0.0);
}

TEST(IntervalVolumeRecorder, BucketsByInterval) {
  IntervalVolumeRecorder rec(2, 300.0);
  rec.add(0, 0.0, 100.0);
  rec.add(0, 299.0, 50.0);
  rec.add(0, 300.0, 10.0);
  rec.add(1, 650.0, 7.0);
  const auto v0 = rec.volumes(0);
  ASSERT_EQ(v0.size(), 3u);  // up to interval 2 (650 / 300)
  EXPECT_DOUBLE_EQ(v0[0], 150.0);
  EXPECT_DOUBLE_EQ(v0[1], 10.0);
  EXPECT_DOUBLE_EQ(v0[2], 0.0);
  const auto v1 = rec.volumes(1);
  EXPECT_DOUBLE_EQ(v1[2], 7.0);
}

TEST(IntervalVolumeRecorder, Rejects) {
  EXPECT_THROW(IntervalVolumeRecorder(1, 0.0), std::invalid_argument);
  IntervalVolumeRecorder rec(1, 10.0);
  EXPECT_THROW(rec.add(0, -1.0, 5.0), std::invalid_argument);
  EXPECT_THROW(rec.add(0, 1.0, -5.0), std::invalid_argument);
  EXPECT_THROW(rec.add(5, 1.0, 5.0), std::out_of_range);
}

class PercentileSweep : public ::testing::TestWithParam<double> {};

TEST_P(PercentileSweep, MonotoneInQ) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(static_cast<double>((i * 37) % 101));
  const double q = GetParam();
  if (q >= 5.0) {
    EXPECT_LE(Percentile(v, q - 5.0), Percentile(v, q) + 1e-12);
  }
  EXPECT_GE(Percentile(v, q), Percentile(v, 0.0));
  EXPECT_LE(Percentile(v, q), Percentile(v, 100.0));
}

INSTANTIATE_TEST_SUITE_P(Qs, PercentileSweep,
                         ::testing::Values(5.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0));

}  // namespace
}  // namespace p4p::sim

#include "sim/streaming.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/topology.h"

namespace p4p::sim {
namespace {

class StreamRandomSelector final : public PeerSelector {
 public:
  std::vector<PeerId> SelectPeers(const PeerInfo& client,
                                  std::span<const PeerInfo> candidates, int m,
                                  std::mt19937_64& rng) override {
    std::vector<PeerId> pool;
    for (const auto& c : candidates) {
      if (c.id != client.id) pool.push_back(c.id);
    }
    std::shuffle(pool.begin(), pool.end(), rng);
    if (static_cast<int>(pool.size()) > m) pool.resize(static_cast<std::size_t>(m));
    return pool;
  }
  std::string name() const override { return "StreamRandom"; }
};

std::vector<PeerSpec> StreamingSwarm(const net::Graph& g, int viewers,
                                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  PopulationConfig cfg;
  cfg.num_peers = viewers;
  for (net::NodeId n = 0; n < static_cast<net::NodeId>(g.node_count()); ++n) {
    cfg.pops.push_back(n);
  }
  cfg.join_window = 0.0;
  auto peers = MakePopulation(cfg, rng);
  PeerSpec source;
  source.node = 0;
  source.up_bps = 1e9;
  source.down_bps = 1e9;
  source.seed = true;
  peers.push_back(source);
  return peers;
}

StreamingConfig FastStreamConfig() {
  StreamingConfig cfg;
  cfg.duration = 120.0;
  cfg.stream_rate_bps = 400e3;
  cfg.rng_seed = 21;
  return cfg;
}

class StreamingSimTest : public ::testing::Test {
 protected:
  StreamingSimTest() : graph_(net::MakeAbilene()), routing_(graph_) {}
  net::Graph graph_;
  net::RoutingTable routing_;
};

TEST_F(StreamingSimTest, ViewersReceiveNearStreamRate) {
  const auto peers = StreamingSwarm(graph_, 20, 1);
  StreamingSimulator sim(graph_, routing_, FastStreamConfig());
  StreamRandomSelector selector;
  const auto result = sim.Run(peers, selector);
  ASSERT_EQ(result.peer_throughput_bps.size(), 20u);
  // Average goodput should be within a factor of ~2 of the stream rate
  // (startup transient included) and clearly nonzero.
  EXPECT_GT(result.mean_throughput_bps(), 100e3);
  EXPECT_LT(result.mean_throughput_bps(), 900e3);
}

TEST_F(StreamingSimTest, ContinuityIsReasonable) {
  const auto peers = StreamingSwarm(graph_, 20, 2);
  StreamingSimulator sim(graph_, routing_, FastStreamConfig());
  StreamRandomSelector selector;
  const auto result = sim.Run(peers, selector);
  EXPECT_GT(result.mean_continuity(), 0.5);
  for (double c : result.peer_continuity) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST_F(StreamingSimTest, RequiresExactlyOneSource) {
  auto peers = StreamingSwarm(graph_, 5, 3);
  StreamingSimulator sim(graph_, routing_, FastStreamConfig());
  StreamRandomSelector selector;
  peers.pop_back();  // no source
  EXPECT_THROW(sim.Run(peers, selector), std::invalid_argument);
  auto two_sources = StreamingSwarm(graph_, 5, 3);
  two_sources.back().seed = true;
  two_sources[0].seed = true;
  EXPECT_THROW(sim.Run(two_sources, selector), std::invalid_argument);
}

TEST_F(StreamingSimTest, BackboneVolumeAccounted) {
  const auto peers = StreamingSwarm(graph_, 15, 4);
  StreamingSimulator sim(graph_, routing_, FastStreamConfig());
  StreamRandomSelector selector;
  const auto result = sim.Run(peers, selector);
  EXPECT_GT(result.total_bytes, 0.0);
  EXPECT_GT(result.mean_backbone_volume_bytes(graph_), 0.0);
  double link_total = 0.0;
  for (double b : result.link_bytes) link_total += b;
  EXPECT_NEAR(link_total, result.byte_hops, 1e-3 * std::max(1.0, link_total));
}

TEST_F(StreamingSimTest, DeterministicForSameSeed) {
  const auto peers = StreamingSwarm(graph_, 10, 5);
  StreamingSimulator sim(graph_, routing_, FastStreamConfig());
  StreamRandomSelector selector;
  const auto r1 = sim.Run(peers, selector);
  const auto r2 = sim.Run(peers, selector);
  EXPECT_DOUBLE_EQ(r1.total_bytes, r2.total_bytes);
  EXPECT_DOUBLE_EQ(r1.mean_throughput_bps(), r2.mean_throughput_bps());
}

TEST_F(StreamingSimTest, LocalizedSwarmUsesLessBackbone) {
  // All viewers co-located with the source: zero backbone traffic expected
  // once a local selector keeps streams inside the PoP... but even a random
  // selector produces none here because every peer is at node 0.
  std::vector<PeerSpec> peers;
  for (int i = 0; i < 10; ++i) {
    PeerSpec p;
    p.node = 0;
    p.up_bps = 100e6;
    p.down_bps = 100e6;
    peers.push_back(p);
  }
  PeerSpec source;
  source.node = 0;
  source.up_bps = 1e9;
  source.down_bps = 1e9;
  source.seed = true;
  peers.push_back(source);
  StreamingSimulator sim(graph_, routing_, FastStreamConfig());
  StreamRandomSelector selector;
  const auto result = sim.Run(peers, selector);
  EXPECT_DOUBLE_EQ(result.byte_hops, 0.0);
  EXPECT_GT(result.total_bytes, 0.0);
}

TEST_F(StreamingSimTest, RejectsBadConfig) {
  StreamingConfig cfg;
  cfg.stream_rate_bps = 0;
  EXPECT_THROW(StreamingSimulator(graph_, routing_, cfg), std::invalid_argument);
  cfg = StreamingConfig{};
  cfg.dt = 0;
  EXPECT_THROW(StreamingSimulator(graph_, routing_, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace p4p::sim

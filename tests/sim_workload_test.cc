#include "sim/workload.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace p4p::sim {
namespace {

TEST(AccessRates, AllClassesDefined) {
  EXPECT_DOUBLE_EQ(RatesFor(AccessClass::kCampus).up_bps, 100e6);
  EXPECT_DOUBLE_EQ(RatesFor(AccessClass::kFttp).down_bps, 20e6);
  EXPECT_GT(RatesFor(AccessClass::kFttp).up_bps, RatesFor(AccessClass::kDsl).up_bps);
  EXPECT_GT(RatesFor(AccessClass::kCable).down_bps,
            RatesFor(AccessClass::kDsl).down_bps);
}

TEST(MakePopulation, BasicProperties) {
  PopulationConfig cfg;
  cfg.num_peers = 50;
  cfg.pops = {0, 1, 2};
  cfg.as_number = 42;
  cfg.join_start = 10.0;
  cfg.join_window = 5.0;
  std::mt19937_64 rng(1);
  const auto peers = MakePopulation(cfg, rng);
  ASSERT_EQ(peers.size(), 50u);
  for (const auto& p : peers) {
    EXPECT_GE(p.join_time, 10.0);
    EXPECT_LE(p.join_time, 15.0);
    EXPECT_EQ(p.as_number, 42);
    EXPECT_TRUE(p.node == 0 || p.node == 1 || p.node == 2);
    EXPECT_DOUBLE_EQ(p.up_bps, 100e6);
    EXPECT_FALSE(p.seed);
    EXPECT_TRUE(std::isinf(p.leave_time));
  }
}

TEST(MakePopulation, WeightsSkewPlacement) {
  PopulationConfig cfg;
  cfg.num_peers = 2000;
  cfg.pops = {0, 1};
  cfg.pop_weights = {9.0, 1.0};
  std::mt19937_64 rng(2);
  const auto peers = MakePopulation(cfg, rng);
  const auto at0 = std::count_if(peers.begin(), peers.end(),
                                 [](const PeerSpec& p) { return p.node == 0; });
  EXPECT_GT(at0, 1600);
  EXPECT_LT(at0, 1990);
}

TEST(MakePopulation, Rejects) {
  std::mt19937_64 rng(1);
  PopulationConfig cfg;
  cfg.pops = {};
  EXPECT_THROW(MakePopulation(cfg, rng), std::invalid_argument);
  cfg.pops = {0};
  cfg.pop_weights = {1.0, 2.0};
  EXPECT_THROW(MakePopulation(cfg, rng), std::invalid_argument);
  cfg.pop_weights.clear();
  cfg.num_peers = -1;
  EXPECT_THROW(MakePopulation(cfg, rng), std::invalid_argument);
}

TEST(MakePopulation, DeterministicGivenRngState) {
  PopulationConfig cfg;
  cfg.num_peers = 20;
  cfg.pops = {0, 1, 2, 3};
  std::mt19937_64 rng1(7);
  std::mt19937_64 rng2(7);
  const auto a = MakePopulation(cfg, rng1);
  const auto b = MakePopulation(cfg, rng2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_DOUBLE_EQ(a[i].join_time, b[i].join_time);
  }
}

TEST(FlashCrowd, ExactCountSortedWithinHorizon) {
  std::mt19937_64 rng(3);
  const auto times = FlashCrowdJoinTimes(500, 1000.0, 0.2, 4.0, 0.2, rng);
  ASSERT_EQ(times.size(), 500u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_GE(times.front(), 0.0);
  EXPECT_LE(times.back(), 1000.0);
}

TEST(FlashCrowd, PeakNearRampEnd) {
  std::mt19937_64 rng(4);
  const auto times = FlashCrowdJoinTimes(20000, 1000.0, 0.2, 5.0, 0.1, rng);
  // Arrival rate in [150, 250] (around the t=200 peak) should exceed the
  // rate in [800, 900] (deep in the decay) several-fold.
  const auto count_in = [&times](double lo, double hi) {
    return std::count_if(times.begin(), times.end(),
                         [lo, hi](double t) { return t >= lo && t < hi; });
  };
  EXPECT_GT(count_in(150, 250), 3 * count_in(800, 900));
}

TEST(FlashCrowd, RejectsBadParameters) {
  std::mt19937_64 rng(5);
  EXPECT_THROW(FlashCrowdJoinTimes(10, -1.0, 0.2, 4.0, 0.2, rng),
               std::invalid_argument);
  EXPECT_THROW(FlashCrowdJoinTimes(10, 100.0, 0.0, 4.0, 0.2, rng),
               std::invalid_argument);
  EXPECT_THROW(FlashCrowdJoinTimes(10, 100.0, 1.0, 4.0, 0.2, rng),
               std::invalid_argument);
  EXPECT_THROW(FlashCrowdJoinTimes(-1, 100.0, 0.2, 4.0, 0.2, rng),
               std::invalid_argument);
}

TEST(FieldTestPopulation, MixAndDwell) {
  FieldTestConfig cfg;
  cfg.num_peers = 3000;
  cfg.pops = {0, 1, 2};
  cfg.fttp_fraction = 0.3;
  cfg.cable_fraction = 0.4;
  cfg.horizon = 10000.0;
  cfg.mean_dwell = 2000.0;
  std::mt19937_64 rng(6);
  const auto peers = MakeFieldTestPopulation(cfg, rng);
  ASSERT_EQ(peers.size(), 3000u);
  int fttp = 0;
  int cable = 0;
  int dsl = 0;
  for (const auto& p : peers) {
    EXPECT_GT(p.leave_time, p.join_time);
    switch (p.access) {
      case AccessClass::kFttp: ++fttp; break;
      case AccessClass::kCable: ++cable; break;
      case AccessClass::kDsl: ++dsl; break;
      default: FAIL() << "unexpected access class";
    }
  }
  EXPECT_NEAR(fttp / 3000.0, 0.3, 0.05);
  EXPECT_NEAR(cable / 3000.0, 0.4, 0.05);
  EXPECT_NEAR(dsl / 3000.0, 0.3, 0.05);
}

TEST(FieldTestPopulation, RejectsEmptyPops) {
  FieldTestConfig cfg;
  std::mt19937_64 rng(1);
  cfg.pops = {};
  EXPECT_THROW(MakeFieldTestPopulation(cfg, rng), std::invalid_argument);
}

TEST(SwarmSizeSeries, CountsJoinedNotLeft) {
  std::vector<PeerSpec> peers(3);
  peers[0].join_time = 0.0;
  peers[0].leave_time = 10.0;
  peers[1].join_time = 5.0;
  peers[1].leave_time = 15.0;
  peers[2].join_time = 20.0;
  const std::vector<double> samples = {1.0, 7.0, 12.0, 25.0};
  const auto sizes = SwarmSizeSeries(peers, samples);
  EXPECT_EQ(sizes, (std::vector<int>{1, 2, 1, 1}));
}

TEST(SwarmSizeSeries, FlashCrowdShapeRisesThenFalls) {
  // The Figure 11 sanity property: peak within the first 30 % of the
  // horizon, and the tail well below the peak.
  FieldTestConfig cfg;
  cfg.num_peers = 5000;
  cfg.pops = {0};
  cfg.horizon = 10000.0;
  cfg.mean_dwell = 1500.0;
  cfg.ramp_fraction = 0.15;
  std::mt19937_64 rng(8);
  const auto peers = MakeFieldTestPopulation(cfg, rng);
  std::vector<double> samples;
  for (int t = 0; t < 100; ++t) samples.push_back(t * 100.0);
  const auto sizes = SwarmSizeSeries(peers, samples);
  const auto peak_it = std::max_element(sizes.begin(), sizes.end());
  const auto peak_idx = static_cast<std::size_t>(peak_it - sizes.begin());
  EXPECT_LT(peak_idx, 35u);
  EXPECT_LT(sizes.back(), *peak_it / 2);
}

TEST(ZipfSwarmSizes, ReproducesScalabilityAnalysisShape) {
  // Section 8: of 34,721 swarms, only 0.72% had more than 100 leechers.
  std::mt19937_64 rng(88);
  const auto sizes = ZipfSwarmSizes(34721, /*alpha=*/1.75, /*max_size=*/5000, rng);
  ASSERT_EQ(sizes.size(), 34721u);
  const double frac = FractionAbove(sizes, 100);
  EXPECT_GT(frac, 0.001);
  EXPECT_LT(frac, 0.03);
}

TEST(ZipfSwarmSizes, BoundsRespected) {
  std::mt19937_64 rng(3);
  const auto sizes = ZipfSwarmSizes(500, 1.2, 50, rng);
  for (int s : sizes) {
    EXPECT_GE(s, 1);
    EXPECT_LE(s, 50);
  }
}

TEST(ZipfSwarmSizes, HigherAlphaMeansSmallerSwarms) {
  std::mt19937_64 rng1(4);
  std::mt19937_64 rng2(4);
  const auto flat = ZipfSwarmSizes(5000, 1.1, 1000, rng1);
  const auto steep = ZipfSwarmSizes(5000, 2.5, 1000, rng2);
  double sum_flat = 0;
  double sum_steep = 0;
  for (int s : flat) sum_flat += s;
  for (int s : steep) sum_steep += s;
  EXPECT_GT(sum_flat, 2.0 * sum_steep);
}

TEST(ZipfSwarmSizes, Rejects) {
  std::mt19937_64 rng(1);
  EXPECT_THROW(ZipfSwarmSizes(-1, 1.0, 10, rng), std::invalid_argument);
  EXPECT_THROW(ZipfSwarmSizes(10, 0.0, 10, rng), std::invalid_argument);
  EXPECT_THROW(ZipfSwarmSizes(10, 1.0, 0, rng), std::invalid_argument);
}

TEST(FractionAbove, Basics) {
  const std::vector<int> sizes = {1, 5, 10, 200, 300};
  EXPECT_DOUBLE_EQ(FractionAbove(sizes, 100), 0.4);
  EXPECT_DOUBLE_EQ(FractionAbove(sizes, 0), 1.0);
  EXPECT_DOUBLE_EQ(FractionAbove(sizes, 1000), 0.0);
  EXPECT_DOUBLE_EQ(FractionAbove({}, 5), 0.0);
}

}  // namespace
}  // namespace p4p::sim

#include "support/fault_injection.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace p4p::testsupport {

void FaultyDatagramLink::Push(std::vector<std::uint8_t> datagram) {
  ++stats_.pushed;
  auto& rng = *rng_;
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (coin(rng) < profile_.drop_rate) {
    ++stats_.dropped;
    return;
  }
  InFlight item{std::move(datagram), 0};
  if (!item.bytes.empty() && coin(rng) < profile_.corrupt_rate) {
    ++stats_.corrupted;
    const auto byte =
        std::uniform_int_distribution<std::size_t>(0, item.bytes.size() - 1)(rng);
    const auto bit = std::uniform_int_distribution<int>(0, 7)(rng);
    item.bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
  }
  if (coin(rng) < profile_.delay_rate) {
    ++stats_.delayed;
    item.due_in = std::uniform_int_distribution<int>(
        1, std::max(1, profile_.max_delay_ticks))(rng);
  }
  const bool duplicate = coin(rng) < profile_.duplicate_rate;
  if (duplicate) {
    ++stats_.duplicated;
    queue_.push_back(item);
  }
  queue_.push_back(std::move(item));
  if (queue_.size() >= 2 && coin(rng) < profile_.reorder_rate) {
    ++stats_.reordered;
    std::swap(queue_[queue_.size() - 1], queue_[queue_.size() - 2]);
  }
}

std::optional<std::vector<std::uint8_t>> FaultyDatagramLink::Pop() {
  // A delayed datagram at the head blocks later ones (in-order delay);
  // out-of-order arrival is what reorder_rate models explicitly.
  if (queue_.empty() || queue_.front().due_in > 0) return std::nullopt;
  auto bytes = std::move(queue_.front().bytes);
  queue_.pop_front();
  ++stats_.delivered;
  return bytes;
}

void FaultyDatagramLink::Tick() {
  for (auto& item : queue_) {
    if (item.due_in > 0) --item.due_in;
  }
}

FaultInjectingTransport::FaultInjectingTransport(proto::DatagramHandler server,
                                                 FaultProfile request_faults,
                                                 FaultProfile response_faults,
                                                 std::uint64_t seed)
    : server_(std::move(server)), rng_(seed),
      request_link_(request_faults, &rng_),
      response_link_(response_faults, &rng_) {
  if (!server_) {
    throw std::invalid_argument("FaultInjectingTransport: null server handler");
  }
}

void FaultInjectingTransport::PumpRequests() {
  while (auto request = request_link_.Pop()) {
    if (auto response = server_(*request)) {
      response_link_.Push(std::move(*response));
    }
  }
}

bool FaultInjectingTransport::Send(std::span<const std::uint8_t> datagram) {
  request_link_.Push(std::vector<std::uint8_t>(datagram.begin(), datagram.end()));
  PumpRequests();
  return true;
}

std::optional<std::vector<std::uint8_t>> FaultInjectingTransport::Receive(
    std::chrono::milliseconds /*timeout*/) {
  if (auto ready = response_link_.Pop()) return ready;
  // Nothing due: advance virtual time one step — delayed requests may now
  // reach the server and delayed responses may become deliverable.
  request_link_.Tick();
  PumpRequests();
  response_link_.Tick();
  return response_link_.Pop();
}

}  // namespace p4p::testsupport

#include "support/fault_injection.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "proto/messages.h"

namespace p4p::testsupport {

void FaultyDatagramLink::Push(std::vector<std::uint8_t> datagram) {
  ++stats_.pushed;
  auto& rng = *rng_;
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (coin(rng) < profile_.drop_rate) {
    ++stats_.dropped;
    return;
  }
  InFlight item{std::move(datagram), 0};
  if (!item.bytes.empty() && coin(rng) < profile_.corrupt_rate) {
    ++stats_.corrupted;
    const auto byte =
        std::uniform_int_distribution<std::size_t>(0, item.bytes.size() - 1)(rng);
    const auto bit = std::uniform_int_distribution<int>(0, 7)(rng);
    item.bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
  }
  if (coin(rng) < profile_.delay_rate) {
    ++stats_.delayed;
    item.due_in = std::uniform_int_distribution<int>(
        1, std::max(1, profile_.max_delay_ticks))(rng);
  }
  const bool duplicate = coin(rng) < profile_.duplicate_rate;
  if (duplicate) {
    ++stats_.duplicated;
    queue_.push_back(item);
  }
  queue_.push_back(std::move(item));
  if (queue_.size() >= 2 && coin(rng) < profile_.reorder_rate) {
    ++stats_.reordered;
    std::swap(queue_[queue_.size() - 1], queue_[queue_.size() - 2]);
  }
}

std::optional<std::vector<std::uint8_t>> FaultyDatagramLink::Pop() {
  // A delayed datagram at the head blocks later ones (in-order delay);
  // out-of-order arrival is what reorder_rate models explicitly.
  if (queue_.empty() || queue_.front().due_in > 0) return std::nullopt;
  auto bytes = std::move(queue_.front().bytes);
  queue_.pop_front();
  ++stats_.delivered;
  return bytes;
}

void FaultyDatagramLink::Tick() {
  for (auto& item : queue_) {
    if (item.due_in > 0) --item.due_in;
  }
}

FaultInjectingTransport::FaultInjectingTransport(proto::DatagramHandler server,
                                                 FaultProfile request_faults,
                                                 FaultProfile response_faults,
                                                 std::uint64_t seed)
    : server_(std::move(server)), rng_(seed),
      request_link_(request_faults, &rng_),
      response_link_(response_faults, &rng_) {
  if (!server_) {
    throw std::invalid_argument("FaultInjectingTransport: null server handler");
  }
}

void FaultInjectingTransport::PumpRequests() {
  while (auto request = request_link_.Pop()) {
    if (auto response = server_(*request)) {
      response_link_.Push(std::move(*response));
    }
  }
}

bool FaultInjectingTransport::Send(std::span<const std::uint8_t> datagram) {
  request_link_.Push(std::vector<std::uint8_t>(datagram.begin(), datagram.end()));
  PumpRequests();
  return true;
}

std::optional<std::vector<std::uint8_t>> FaultInjectingTransport::Receive(
    std::chrono::milliseconds /*timeout*/) {
  if (auto ready = response_link_.Pop()) return ready;
  // Nothing due: advance virtual time one step — delayed requests may now
  // reach the server and delayed responses may become deliverable.
  request_link_.Tick();
  PumpRequests();
  response_link_.Tick();
  return response_link_.Pop();
}

EndpointScript::EndpointScript(std::vector<Phase> phases)
    : phases_(std::move(phases)) {
  if (phases_.empty()) {
    throw std::invalid_argument("EndpointScript: empty schedule");
  }
}

void EndpointScript::Set(EndpointMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  phases_ = {{0, mode}};
}

EndpointMode EndpointScript::ModeForCall() {
  std::lock_guard<std::mutex> lock(mu_);
  ++calls_;
  while (phases_.size() > 1 && phases_.front().calls <= 0) {
    phases_.erase(phases_.begin());
  }
  auto& phase = phases_.front();
  if (phases_.size() > 1) --phase.calls;
  if (phase.mode == EndpointMode::kDead || phase.mode == EndpointMode::kUnavailable) {
    ++failures_;
  }
  return phase.mode;
}

std::uint64_t EndpointScript::call_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return calls_;
}

std::uint64_t EndpointScript::failure_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

ScriptedTransport::ScriptedTransport(proto::Handler backend, EndpointScript* script,
                                     VirtualClock* clock, double slow_seconds,
                                     std::uint32_t retry_after_ms)
    : backend_(std::move(backend)), script_(script), clock_(clock),
      slow_seconds_(slow_seconds), retry_after_ms_(retry_after_ms) {
  if (!backend_ || script_ == nullptr) {
    throw std::invalid_argument("ScriptedTransport: null backend or script");
  }
}

std::vector<std::uint8_t> ScriptedTransport::Call(
    std::span<const std::uint8_t> request) {
  switch (script_->ModeForCall()) {
    case EndpointMode::kDead:
      throw std::runtime_error("ScriptedTransport: endpoint dead");
    case EndpointMode::kUnavailable:
      return proto::Encode(proto::UnavailableResp{retry_after_ms_});
    case EndpointMode::kSlow:
      // The slow replica costs virtual time but eventually answers — paired
      // with a request deadline this is the "slow, not dead" failure class.
      if (clock_ != nullptr) clock_->Advance(slow_seconds_);
      return backend_(request);
    case EndpointMode::kOk:
      break;
  }
  return backend_(request);
}

}  // namespace p4p::testsupport

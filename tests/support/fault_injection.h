// Deterministic fault injection for the portal serving and validation paths.
//
// FaultyDatagramLink models one direction of a lossy network as a queue of
// in-flight datagrams with seeded, independently applied faults: drop,
// duplicate, reorder, corrupt (single bit flip), and delay (virtual ticks).
// FaultInjectingTransport wires a client-side DatagramTransport through two
// such links to an in-process DatagramHandler, so lossy-network behavior is
// reproducible bit-for-bit from a seed — no sockets, no wall-clock time.
//
// Time model: every Receive() call is one virtual tick (one per-try timeout
// of the client under test). A delayed datagram becomes deliverable after
// its tick count elapses; an empty Receive() returns std::nullopt, which
// the client interprets as that try's timeout.
//
// For the TCP/failover path, VirtualClock + EndpointScript +
// ScriptedTransport model a replica set where each endpoint follows a
// scripted failure schedule — dead, flapping, overloaded, slow-then-recover
// — against a virtual clock, so every circuit-breaker and retry decision of
// ResilientPortalClient is reproducible bit-for-bit.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <random>
#include <vector>

#include "proto/transport.h"

namespace p4p::testsupport {

/// Per-direction fault rates, each applied independently per datagram.
struct FaultProfile {
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  /// Swap the new datagram behind the previously queued one.
  double reorder_rate = 0.0;
  /// Flip one uniformly chosen bit.
  double corrupt_rate = 0.0;
  /// Hold the datagram for 1..max_delay_ticks virtual ticks.
  double delay_rate = 0.0;
  int max_delay_ticks = 2;
};

/// One direction of the lossy link. Deterministic given the shared PRNG's
/// seed and the call sequence.
class FaultyDatagramLink {
 public:
  struct Stats {
    std::uint64_t pushed = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t delayed = 0;
    std::uint64_t delivered = 0;
  };

  FaultyDatagramLink(FaultProfile profile, std::mt19937_64* rng)
      : profile_(profile), rng_(rng) {}

  /// Sends one datagram into the link, applying faults.
  void Push(std::vector<std::uint8_t> datagram);
  /// Next deliverable datagram, or std::nullopt when none is due yet.
  std::optional<std::vector<std::uint8_t>> Pop();
  /// One virtual time step: ages every delayed datagram.
  void Tick();

  const Stats& stats() const { return stats_; }

 private:
  struct InFlight {
    std::vector<std::uint8_t> bytes;
    int due_in = 0;  // deliverable when 0
  };

  FaultProfile profile_;
  std::mt19937_64* rng_;
  std::deque<InFlight> queue_;
  Stats stats_;
};

/// DatagramTransport test double: client requests traverse the request link
/// into `server`, responses traverse the response link back. Both the UDP
/// client and the in-process service are exercised exactly as over sockets,
/// but every fault is seeded and replayable.
class FaultInjectingTransport final : public proto::DatagramTransport {
 public:
  FaultInjectingTransport(proto::DatagramHandler server, FaultProfile request_faults,
                          FaultProfile response_faults, std::uint64_t seed);
  /// Symmetric faults on both directions.
  FaultInjectingTransport(proto::DatagramHandler server, FaultProfile faults,
                          std::uint64_t seed)
      : FaultInjectingTransport(std::move(server), faults, faults, seed) {}

  bool Send(std::span<const std::uint8_t> datagram) override;
  /// `timeout` is ignored: one call is one virtual tick, so tests never
  /// sleep. std::nullopt means "nothing arrived within this try".
  std::optional<std::vector<std::uint8_t>> Receive(
      std::chrono::milliseconds timeout) override;

  const FaultyDatagramLink& request_link() const { return request_link_; }
  const FaultyDatagramLink& response_link() const { return response_link_; }

 private:
  /// Delivers every due request to the server, queueing its answers.
  void PumpRequests();

  proto::DatagramHandler server_;
  std::mt19937_64 rng_;
  FaultyDatagramLink request_link_;
  FaultyDatagramLink response_link_;
};

// --- Scripted endpoint failures for the TCP/failover path -------------------

/// Deterministic substitute for the wall clock: seconds as an atomic
/// microsecond counter, advanced by "sleeping". Thread-safe.
class VirtualClock {
 public:
  double Now() const {
    return static_cast<double>(micros_.load(std::memory_order_acquire)) * 1e-6;
  }
  void Advance(double seconds) {
    micros_.fetch_add(static_cast<std::int64_t>(seconds * 1e6),
                      std::memory_order_acq_rel);
  }
  /// Adapters matching ResilientPortalClient's clock/sleeper injection
  /// points: time only moves when someone sleeps.
  std::function<double()> NowFn() {
    return [this] { return Now(); };
  }
  std::function<void(double)> SleeperFn() {
    return [this](double seconds) { Advance(seconds); };
  }

 private:
  std::atomic<std::int64_t> micros_{0};
};

/// What one endpoint does with the next request aimed at it.
enum class EndpointMode {
  kOk,           ///< serve normally through the backend handler
  kDead,         ///< transport failure (connect refused / black hole)
  kUnavailable,  ///< answer with UnavailableResp (overload shedding)
  kSlow,         ///< consume virtual time, then serve (slow-then-recover)
};

/// One replica's scripted failure schedule: a sequence of (calls, mode)
/// phases consumed per request, with the final phase lasting forever, plus
/// a thread-safe override for mid-run flips (flapping replicas in the
/// concurrency hammer). Deterministic given the call sequence.
class EndpointScript {
 public:
  struct Phase {
    int calls = 0;  ///< requests served in this mode (final phase: ignored)
    EndpointMode mode = EndpointMode::kOk;
  };

  explicit EndpointScript(EndpointMode initial = EndpointMode::kOk)
      : phases_{{0, initial}} {}
  explicit EndpointScript(std::vector<Phase> phases);

  /// Overrides the schedule from now on (clears remaining phases).
  void Set(EndpointMode mode);

  /// Consumes one request: the mode it is served with.
  EndpointMode ModeForCall();

  std::uint64_t call_count() const;
  std::uint64_t failure_count() const;  ///< kDead + kUnavailable calls served

 private:
  mutable std::mutex mu_;
  std::vector<Phase> phases_;  // front() is current; last never popped
  std::uint64_t calls_ = 0;
  std::uint64_t failures_ = 0;
};

/// Transport to one scripted replica: consults the endpoint's script per
/// request and either serves through the in-process handler, throws (dead),
/// answers UnavailableResp with `retry_after_ms` (overloaded), or advances
/// the virtual clock by `slow_seconds` before serving (slow). Wrap in a
/// factory keyed on SrvRecord to model a replica set.
class ScriptedTransport final : public proto::Transport {
 public:
  /// `script` and `clock` must outlive the transport; `clock` may be null
  /// when the script never goes kSlow.
  ScriptedTransport(proto::Handler backend, EndpointScript* script,
                    VirtualClock* clock = nullptr, double slow_seconds = 1.0,
                    std::uint32_t retry_after_ms = 50);

  std::vector<std::uint8_t> Call(std::span<const std::uint8_t> request) override;

 private:
  proto::Handler backend_;
  EndpointScript* script_;
  VirtualClock* clock_;
  double slow_seconds_;
  std::uint32_t retry_after_ms_;
};

}  // namespace p4p::testsupport

// Deterministic fault injection for the UDP validation path.
//
// FaultyDatagramLink models one direction of a lossy network as a queue of
// in-flight datagrams with seeded, independently applied faults: drop,
// duplicate, reorder, corrupt (single bit flip), and delay (virtual ticks).
// FaultInjectingTransport wires a client-side DatagramTransport through two
// such links to an in-process DatagramHandler, so lossy-network behavior is
// reproducible bit-for-bit from a seed — no sockets, no wall-clock time.
//
// Time model: every Receive() call is one virtual tick (one per-try timeout
// of the client under test). A delayed datagram becomes deliverable after
// its tick count elapses; an empty Receive() returns std::nullopt, which
// the client interprets as that try's timeout.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <random>
#include <vector>

#include "proto/transport.h"

namespace p4p::testsupport {

/// Per-direction fault rates, each applied independently per datagram.
struct FaultProfile {
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  /// Swap the new datagram behind the previously queued one.
  double reorder_rate = 0.0;
  /// Flip one uniformly chosen bit.
  double corrupt_rate = 0.0;
  /// Hold the datagram for 1..max_delay_ticks virtual ticks.
  double delay_rate = 0.0;
  int max_delay_ticks = 2;
};

/// One direction of the lossy link. Deterministic given the shared PRNG's
/// seed and the call sequence.
class FaultyDatagramLink {
 public:
  struct Stats {
    std::uint64_t pushed = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t delayed = 0;
    std::uint64_t delivered = 0;
  };

  FaultyDatagramLink(FaultProfile profile, std::mt19937_64* rng)
      : profile_(profile), rng_(rng) {}

  /// Sends one datagram into the link, applying faults.
  void Push(std::vector<std::uint8_t> datagram);
  /// Next deliverable datagram, or std::nullopt when none is due yet.
  std::optional<std::vector<std::uint8_t>> Pop();
  /// One virtual time step: ages every delayed datagram.
  void Tick();

  const Stats& stats() const { return stats_; }

 private:
  struct InFlight {
    std::vector<std::uint8_t> bytes;
    int due_in = 0;  // deliverable when 0
  };

  FaultProfile profile_;
  std::mt19937_64* rng_;
  std::deque<InFlight> queue_;
  Stats stats_;
};

/// DatagramTransport test double: client requests traverse the request link
/// into `server`, responses traverse the response link back. Both the UDP
/// client and the in-process service are exercised exactly as over sockets,
/// but every fault is seeded and replayable.
class FaultInjectingTransport final : public proto::DatagramTransport {
 public:
  FaultInjectingTransport(proto::DatagramHandler server, FaultProfile request_faults,
                          FaultProfile response_faults, std::uint64_t seed);
  /// Symmetric faults on both directions.
  FaultInjectingTransport(proto::DatagramHandler server, FaultProfile faults,
                          std::uint64_t seed)
      : FaultInjectingTransport(std::move(server), faults, faults, seed) {}

  bool Send(std::span<const std::uint8_t> datagram) override;
  /// `timeout` is ignored: one call is one virtual tick, so tests never
  /// sleep. std::nullopt means "nothing arrived within this try".
  std::optional<std::vector<std::uint8_t>> Receive(
      std::chrono::milliseconds timeout) override;

  const FaultyDatagramLink& request_link() const { return request_link_; }
  const FaultyDatagramLink& response_link() const { return response_link_; }

 private:
  /// Delivers every due request to the server, queueing its answers.
  void PumpRequests();

  proto::DatagramHandler server_;
  std::mt19937_64 rng_;
  FaultyDatagramLink request_link_;
  FaultyDatagramLink response_link_;
};

}  // namespace p4p::testsupport

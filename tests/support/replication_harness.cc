#include "support/replication_harness.h"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

#include <utility>

#include "core/itracker.h"
#include "net/topology.h"
#include "proto/directory.h"
#include "proto/failover.h"
#include "proto/federation.h"
#include "proto/telemetry.h"
#include "support/fault_injection.h"

namespace p4p::testsupport {
namespace {

/// 64-bit FNV-1a fold for the replay digest.
class Digest {
 public:
  void Fold(std::uint64_t value) {
    for (int shift = 56; shift >= 0; shift -= 8) {
      Byte(static_cast<std::uint8_t>(value >> shift));
    }
  }
  void Fold(std::span<const std::uint8_t> bytes) {
    Fold(static_cast<std::uint64_t>(bytes.size()));
    for (const auto b : bytes) Byte(b);
  }
  std::uint64_t value() const { return hash_; }

 private:
  void Byte(std::uint8_t b) {
    hash_ ^= b;
    hash_ *= 1099511628211ULL;
  }
  std::uint64_t hash_ = 14695981039346656037ULL;
};

/// Byte-for-byte frame-set comparison; every differing field becomes one
/// violation so a conformance failure names exactly what diverged.
void CompareFrameSets(const proto::SnapshotFrameSet& got,
                      const proto::SnapshotFrameSet& want, const std::string& label,
                      std::vector<std::string>& violations) {
  const auto fail = [&](const std::string& what) {
    violations.push_back(label + ": " + what);
  };
  if (got.version != want.version) fail("version mismatch");
  if (got.view_version != want.view_version) fail("view_version mismatch");
  if (got.num_pids != want.num_pids) fail("num_pids mismatch");
  if (got.not_modified != want.not_modified) fail("not_modified bytes differ");
  if (got.external_view != want.external_view) fail("external_view bytes differ");
  if (got.policy != want.policy) fail("policy bytes differ");
  if (got.rows.size() != want.rows.size() ||
      got.row_versions.size() != want.row_versions.size()) {
    fail("row count mismatch");
    return;
  }
  for (std::size_t i = 0; i < got.rows.size(); ++i) {
    if (got.rows[i] != want.rows[i]) {
      fail("row " + std::to_string(i) + " bytes differ");
    }
    if (got.row_versions[i] != want.row_versions[i]) {
      fail("row " + std::to_string(i) + " content version differs");
    }
  }
}

}  // namespace

LossyCallChannel::LossyCallChannel(proto::Handler backend, double drop_rate,
                                   double corrupt_rate, std::uint64_t seed)
    : backend_(std::move(backend)), drop_rate_(drop_rate),
      corrupt_rate_(corrupt_rate), rng_(seed) {}

std::vector<std::uint8_t> LossyCallChannel::Call(
    std::span<const std::uint8_t> request) {
  ++calls_;
  std::uniform_real_distribution<double> u(0.0, 1.0);
  if (u(rng_) < drop_rate_) {
    ++drops_;
    throw std::runtime_error("request lost");
  }
  std::vector<std::uint8_t> delivered(request.begin(), request.end());
  if (!delivered.empty() && u(rng_) < corrupt_rate_) {
    ++corruptions_;
    FlipBit(delivered);
  }
  bytes_ += delivered.size();
  auto response = backend_(delivered);
  if (u(rng_) < drop_rate_) {
    ++drops_;
    throw std::runtime_error("response lost");
  }
  if (!response.empty() && u(rng_) < corrupt_rate_) {
    ++corruptions_;
    FlipBit(response);
  }
  bytes_ += response.size();
  return response;
}

void LossyCallChannel::FlipBit(std::vector<std::uint8_t>& bytes) {
  std::uniform_int_distribution<std::size_t> pick(0, bytes.size() * 8 - 1);
  const std::size_t bit = pick(rng_);
  bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

ReplicationScenarioResult RunReplicationScenario(
    const ReplicationScenarioConfig& config) {
  ReplicationScenarioResult result;
  int round = -1;  // -1 = setup / post-run phases
  const auto fail = [&](const std::string& what) {
    std::ostringstream msg;
    msg << "seed=" << config.seed << " drop=" << config.drop_rate
        << " round=" << round << ": " << what;
    result.violations.push_back(msg.str());
  };

  // --- publisher side: tracker in protected-link mode (Fig. 6), so the
  // scripted loads reprice only the protected links and most versions touch
  // a handful of p-distance rows — the workload deltas exist for.
  net::Graph graph = net::MakeAbilene();
  net::RoutingTable routing(graph);
  core::ITrackerConfig tracker_config;
  tracker_config.mode = core::PriceMode::kProtectedLink;
  core::ITracker tracker(graph, routing, tracker_config);
  const std::vector<net::LinkId> protected_links = {0, 5, 9};
  for (const auto link : protected_links) {
    tracker.ProtectLink(link, core::ProtectedLinkRule{0.5, 1.0, 0.1});
  }
  proto::ITrackerService service(&tracker);

  // --- telemetry plane: a probe feeding the collector over a (possibly
  // lossy) channel; the control loop drives reprice + delta publish.
  proto::LinkLoadCollector collector(graph.link_count());
  LossyCallChannel telemetry_channel(collector.handler(),
                                     config.telemetry_drop_rate,
                                     /*corrupt_rate=*/0.0, config.seed ^ 0x7E1EULL);
  proto::LinkLoadReporter reporter(/*reporter_id=*/7, &telemetry_channel);

  // --- follower under test: delta replication over lossy channels.
  proto::ReplicatedSnapshotStore store_d;
  proto::FollowerPortalService serve_d(&store_d);
  proto::SnapshotFollower follower_d(&store_d);
  proto::SnapshotPublisher delta_pub(&service);
  delta_pub.AddFollower("delta.example", 1,
                        std::make_unique<LossyCallChannel>(
                            follower_d.replication_handler(), config.drop_rate,
                            config.corrupt_rate, config.seed ^ 0xD317AULL));
  LossyCallChannel pull_channel(delta_pub.replication_handler(), config.drop_rate,
                                config.corrupt_rate, config.seed ^ 0x9D11ULL);

  // --- oracle follower: full pushes only, clean channel — what the lossy
  // delta follower must converge to byte for byte.
  proto::ReplicatedSnapshotStore store_f;
  proto::FollowerPortalService serve_f(&store_f);
  proto::SnapshotFollower follower_f(&store_f);
  proto::PublisherOptions full_only;
  full_only.enable_delta = false;
  proto::SnapshotPublisher oracle_pub(&service, full_only);
  oracle_pub.AddFollower("oracle.example", 2,
                         std::make_unique<proto::InProcessTransport>(
                             follower_f.replication_handler()));

  proto::PDistanceControlLoop loop(&tracker, &collector, &delta_pub);

  // Beacons ride a faulty datagram link (drop/reorder/corrupt/delay).
  std::mt19937_64 beacon_rng(config.seed ^ 0xB34C04ULL);
  FaultProfile beacon_faults;
  beacon_faults.drop_rate = config.drop_rate;
  beacon_faults.reorder_rate = config.drop_rate / 2;
  beacon_faults.corrupt_rate = config.corrupt_rate;
  beacon_faults.delay_rate = 0.25;
  FaultyDatagramLink beacon_link(beacon_faults, &beacon_rng);

  // Truth map: version -> checksum of the frames published at it. Whatever
  // the follower serves must checksum-match an entry, which is exactly the
  // "complete set of one published version, never mixed" invariant.
  std::map<std::uint64_t, std::uint32_t> truth;
  Digest digest;
  std::uint64_t last_version_d = 0;
  int stale_streak = 0;

  const auto view_request = proto::Encode(proto::GetExternalViewReq{});

  for (round = 0; round < config.rounds; ++round) {
    // Scripted feed: utilization on the protected links cycles below /
    // around / above the 0.5 threshold, so prices rise some rounds, decay
    // others, and stand still when a flush was lost. A couple of
    // unprotected links report too (prices ignore them).
    for (const auto link : protected_links) {
      const double util = 0.25 + 0.45 * static_cast<double>((round + link) % 3);
      reporter.Record(link, util * graph.link(link).capacity_bps);
    }
    reporter.Record(1, 0.3 * graph.link(1).capacity_bps);
    reporter.Record(2, 0.6 * graph.link(2).capacity_bps);
    reporter.Flush();  // a lost flush keeps the batch for the next round

    if (loop.Tick()) ++result.updates;  // reprice + delta publish
    delta_pub.PublishOnce();            // same-round retry of failed pushes
    oracle_pub.PublishOnce();

    {
      const auto frames = service.ExportFrames();
      truth.emplace(frames.version, proto::FrameSetChecksum(frames));
    }

    // Oracle lockstep: a clean full-push channel never lags the tracker.
    if (store_f.version() != tracker.version()) {
      fail("oracle follower lagged a clean channel");
    }

    // Beacon gap detection + anti-entropy pull over the lossy channel.
    beacon_link.Push(delta_pub.BeaconFrame());
    beacon_link.Tick();
    while (auto datagram = beacon_link.Pop()) follower_d.HandleBeacon(*datagram);
    if (follower_d.behind()) {
      try {
        follower_d.PullOnce(pull_channel);
      } catch (const std::exception&) {
      }
    }

    // --- per-round invariants on the lossy follower ---
    const auto held = store_d.current();
    if (store_d.version() < last_version_d) fail("installed version rolled back");
    last_version_d = store_d.version();

    if (held) {
      const auto it = truth.find(held->version);
      if (it == truth.end()) {
        fail("follower holds a version the publisher never published");
      } else if (proto::FrameSetChecksum(*held) != it->second) {
        fail("held frames diverge from the published bytes (mixed set?)");
      }
    }

    const auto response = serve_d.Handle(view_request);
    const auto decoded = proto::Decode(response);
    if (!decoded.has_value()) {
      fail("follower served undecodable bytes");
    } else if (std::get_if<proto::UnavailableResp>(&*decoded) != nullptr) {
      if (held) fail("served Unavailable while holding installed frames");
    } else if (const auto* view =
                   std::get_if<proto::GetExternalViewResp>(&*decoded)) {
      if (!held) {
        fail("served a view with no installed frames");
      } else {
        if (response != held->external_view) {
          fail("served view bytes differ from the installed frames");
        }
        if (view->version != held->view_version) {
          fail("served view version is not the installed view_version");
        }
        // The served version token earns NotModified back (the
        // content-version conditional path), and a row fetch comes from
        // the same installed set — no torn reads across frames.
        const auto conditional = proto::Decode(
            serve_d.Handle(proto::Encode(proto::GetExternalViewReq{view->version})));
        const auto* nm =
            conditional ? std::get_if<proto::NotModifiedResp>(&*conditional) : nullptr;
        if (nm == nullptr || nm->version != view->version) {
          fail("view version token did not earn NotModified");
        }
        const auto pid = static_cast<core::Pid>(round % held->rows.size());
        if (serve_d.Handle(proto::Encode(proto::GetPDistancesReq{pid})) !=
            held->rows[static_cast<std::size_t>(pid)]) {
          fail("served row bytes differ from the installed frames");
        }
      }
    } else {
      fail("unexpected response type from follower");
    }

    if (store_d.version() < tracker.version()) {
      ++stale_streak;
      result.max_staleness_rounds = std::max(result.max_staleness_rounds, stale_streak);
    } else {
      stale_streak = 0;
    }

    digest.Fold(store_d.version());
    digest.Fold(store_f.version());
    digest.Fold(response);
    digest.Fold(serve_f.Handle(view_request));
  }
  round = -1;

  // --- healing: once the channel is clean, anti-entropy converges and the
  // delta-synced store is byte-for-byte the full-push oracle's.
  proto::InProcessTransport clean_pull(delta_pub.replication_handler());
  for (int attempt = 0; attempt < 64 && store_d.version() < tracker.version();
       ++attempt) {
    follower_d.PullOnce(clean_pull);
  }
  if (store_d.version() != tracker.version()) {
    fail("anti-entropy over a clean channel did not converge");
  }

  const auto final_d = store_d.current();
  const auto final_f = store_f.current();
  if (!final_d || !final_f) {
    fail("a follower ended the scenario with no installed frames");
  } else {
    CompareFrameSets(*final_d, *final_f, "delta follower vs full-push oracle",
                     result.violations);
    CompareFrameSets(*final_d, service.ExportFrames(),
                     "delta follower vs publisher export", result.violations);
  }

  digest.Fold(store_d.version());
  result.digest = digest.value();
  result.final_version = store_d.version();
  result.delta_installs = follower_d.delta_install_count();
  result.delta_fallbacks = delta_pub.delta_fallback_count();
  result.delta_frames_sent = delta_pub.delta_frames_sent();
  result.full_frames_sent = delta_pub.full_frames_sent();
  result.delta_bytes_sent = delta_pub.delta_bytes_sent();
  result.full_bytes_sent = delta_pub.full_bytes_sent();
  return result;
}

// --- failover chaos scenarios -----------------------------------------------

namespace {

/// Non-owning Transport adapter: the coordinator's connector hands these
/// out, all forwarding to the cluster's persistent per-pair lossy channel
/// (one fault-rng stream per ordered pair, shared by every use — pushes,
/// pulls, promotion anti-entropy — so replay stays bit-identical).
class BorrowedTransport final : public proto::Transport {
 public:
  explicit BorrowedTransport(proto::Transport* inner) : inner_(inner) {}
  std::vector<std::uint8_t> Call(std::span<const std::uint8_t> request) override {
    return inner_->Call(request);
  }

 private:
  proto::Transport* inner_;
};

/// One replica process: the full portal stack plus its failover
/// coordinator. A cold restart destroys and rebuilds the whole struct —
/// listeners and beacon observers cannot be unregistered, so the process
/// boundary is the object boundary, exactly like a real restart.
struct FailoverReplica {
  std::string target;
  std::uint16_t port;
  net::Graph graph;
  net::RoutingTable routing;
  core::ITracker tracker;
  proto::ITrackerService service;
  proto::ReplicatedSnapshotStore store;
  proto::FollowerPortalService serve;
  proto::SnapshotFollower follower;
  /// Built after the struct (its connector closure needs the cluster).
  std::unique_ptr<proto::FailoverCoordinator> coordinator;
  bool alive = true;
  /// Per-process-lifetime invariant bookkeeping.
  std::uint64_t last_term = 0;
  std::uint64_t last_version = 0;

  FailoverReplica(std::string target_in, std::uint16_t port_in)
      : target(std::move(target_in)), port(port_in), graph(net::MakeAbilene()),
        routing(graph),
        tracker(graph, routing,
                [] {
                  core::ITrackerConfig config;
                  config.mode = core::PriceMode::kProtectedLink;
                  return config;
                }()),
        service(&tracker), serve(&store), follower(&store) {
    for (const net::LinkId link : {0, 5, 9}) {
      tracker.ProtectLink(link, core::ProtectedLinkRule{0.5, 1.0, 0.1});
    }
  }
};

struct FailoverCluster {
  const FailoverScenarioConfig& config;
  proto::PortalDirectory directory;
  double now = 0.0;
  /// Replica index the partition isolates (-1 = fully connected).
  int island = -1;
  std::vector<std::unique_ptr<FailoverReplica>> replicas;
  /// Ordered-pair lossy channels, index src * n + dst.
  std::vector<std::unique_ptr<LossyCallChannel>> channels;
  /// Counters accumulated from processes destroyed by a cold restart.
  std::uint64_t promotions_accum = 0;
  std::uint64_t demotions_accum = 0;
  std::uint64_t fenced_rejects_accum = 0;
  std::uint64_t backoff_skips_accum = 0;

  explicit FailoverCluster(const FailoverScenarioConfig& config_in)
      : config(config_in) {}

  bool Connected(int src, int dst) const {
    if (!replicas[static_cast<std::size_t>(src)]->alive ||
        !replicas[static_cast<std::size_t>(dst)]->alive) {
      return false;
    }
    return (src == island) == (dst == island);
  }

  int IndexOf(const std::string& target, std::uint16_t port) const {
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      if (replicas[i]->target == target && replicas[i]->port == port) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

/// Wires one replica's coordinator: connector routes through the shared
/// per-pair channels (connectivity-gated at call time, so partitions and
/// deaths bite live connections too), clock reads the cluster's virtual
/// time.
void WireCoordinator(FailoverCluster& cluster, int idx) {
  auto& replica = *cluster.replicas[static_cast<std::size_t>(idx)];
  proto::FailoverOptions options;
  options.domain = "isp.example";
  options.self_target = replica.target;
  options.self_port = replica.port;
  options.lease_seconds = cluster.config.lease_seconds;
  options.stagger_seconds = cluster.config.stagger_seconds;
  const int n = cluster.config.replicas;
  replica.coordinator = std::make_unique<proto::FailoverCoordinator>(
      &replica.tracker, &replica.service, &replica.store, &replica.follower,
      &cluster.directory,
      [&cluster, idx, n](const std::string& target,
                         std::uint16_t port) -> std::unique_ptr<proto::Transport> {
        const int dst = cluster.IndexOf(target, port);
        if (dst < 0) return nullptr;
        return std::make_unique<BorrowedTransport>(
            cluster.channels[static_cast<std::size_t>(idx * n + dst)].get());
      },
      options, [&cluster] { return cluster.now; });
  proto::PullRetryOptions retry;
  retry.initial_backoff_seconds = cluster.config.tick_seconds * 0.5;
  retry.backoff_factor = 2.0;
  retry.max_backoff_seconds = cluster.config.tick_seconds * 8.0;
  retry.jitter = 0.25;
  retry.max_attempts = 12;
  replica.follower.ConfigurePullRetry(
      retry, cluster.config.seed ^ (0xBACC0FFULL + static_cast<std::uint64_t>(idx)));
}

/// Accumulates a process's counters before it is torn down (cold restart)
/// so the scenario totals survive the rebuild.
void AccumulateCounters(FailoverCluster& cluster, const FailoverReplica& replica) {
  if (replica.coordinator) {
    cluster.promotions_accum += replica.coordinator->promote_count();
    cluster.demotions_accum += replica.coordinator->demote_count();
  }
  cluster.fenced_rejects_accum += replica.follower.stale_term_reject_count();
  cluster.backoff_skips_accum += replica.follower.pull_backoff_skip_count();
}

}  // namespace

FailoverScenarioResult RunFailoverScenario(const FailoverScenarioConfig& config) {
  if (config.replicas < 2 || config.replicas > 8) {
    throw std::invalid_argument("RunFailoverScenario: replicas must be 2..8");
  }
  if (config.rounds < 1 || config.tick_seconds <= 0.0 ||
      config.lease_seconds <= 0.0 || config.stagger_seconds < 0.0) {
    throw std::invalid_argument("RunFailoverScenario: bad schedule parameters");
  }
  if (config.drop_rate < 0.0 || config.drop_rate > 1.0 ||
      config.corrupt_rate < 0.0 || config.corrupt_rate > 1.0) {
    throw std::invalid_argument("RunFailoverScenario: rates must be in [0, 1]");
  }

  FailoverScenarioResult result;
  int round = -1;  // -1 = setup / settle phases
  const auto fail = [&](const std::string& what) {
    std::ostringstream msg;
    msg << "seed=" << config.seed << " drop=" << config.drop_rate
        << " round=" << round << ": " << what;
    result.violations.push_back(msg.str());
  };

  const int n = config.replicas;
  FailoverCluster cluster(config);
  for (int i = 0; i < n; ++i) {
    const std::string target = "replica" + std::to_string(i) + ".example";
    const auto port = static_cast<std::uint16_t>(9000 + i);
    // SRV priority == index: replica 0 is the rank-0 candidate.
    cluster.directory.AddRecord("isp.example", proto::SrvRecord{target, port, i, 1});
    cluster.replicas.push_back(std::make_unique<FailoverReplica>(target, port));
  }
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      cluster.channels.push_back(std::make_unique<LossyCallChannel>(
          [&cluster, src, dst](std::span<const std::uint8_t> request) {
            if (!cluster.Connected(src, dst)) {
              throw std::runtime_error("replica unreachable");
            }
            return cluster.replicas[static_cast<std::size_t>(dst)]
                ->coordinator->HandleReplication(request);
          },
          config.drop_rate, config.corrupt_rate,
          config.seed ^ (0xFA110ULL + static_cast<std::uint64_t>(src * n + dst))));
    }
  }
  for (int i = 0; i < n; ++i) WireCoordinator(cluster, i);

  // Truth map: (term, version) -> checksum of the frames published at it.
  // Both split-brain publishers record truth; the fence decides whose
  // frames survive, but neither ever counts as "never published".
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> truth;
  Digest digest;
  std::mt19937_64 beacon_rng(config.seed ^ 0xB34C02ULL);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  const auto view_request = proto::Encode(proto::GetExternalViewReq{});

  const auto record_truth = [&](FailoverReplica& replica) {
    auto frames = replica.service.ExportFrames();
    frames.term = replica.coordinator->term();
    truth.emplace(std::pair(frames.term, frames.version),
                  proto::FrameSetChecksum(frames));
  };
  const auto current_publishers = [&] {
    std::vector<int> publishers;
    for (int i = 0; i < n; ++i) {
      const auto& replica = *cluster.replicas[static_cast<std::size_t>(i)];
      if (replica.alive && replica.coordinator->role() ==
                               proto::FailoverCoordinator::Role::kPublisher) {
        publishers.push_back(i);
      }
    }
    return publishers;
  };
  const auto max_term = [&] {
    std::uint64_t term = 0;
    for (const auto& replica : cluster.replicas) {
      if (replica->coordinator) {
        term = std::max(term, replica->coordinator->term());
      }
    }
    return term;
  };

  int disruption_round = -1;
  std::uint64_t disruption_term = 0;
  int killed_idx = -1;

  for (round = 0; round < config.rounds; ++round) {
    cluster.now += config.tick_seconds;

    // --- scheduled faults ---
    if (round == config.partition_round) {
      const auto publishers = current_publishers();
      cluster.island = publishers.empty() ? 0 : publishers.front();
      if (disruption_round < 0) {
        disruption_round = round;
        disruption_term = max_term();
      }
    }
    if (round == config.heal_round) cluster.island = -1;
    if (round == config.kill_publisher_round) {
      const auto publishers = current_publishers();
      killed_idx = publishers.empty() ? 0 : publishers.front();
      cluster.replicas[static_cast<std::size_t>(killed_idx)]->alive = false;
      if (disruption_round < 0) {
        disruption_round = round;
        disruption_term = max_term();
      }
    }
    if (round == config.revive_publisher_round && killed_idx >= 0) {
      // Cold restart: the whole process is rebuilt — empty store, fence at
      // 0, fresh coordinator — and must re-pull its way back in.
      auto& slot = cluster.replicas[static_cast<std::size_t>(killed_idx)];
      AccumulateCounters(cluster, *slot);
      const std::string target = slot->target;
      const std::uint16_t port = slot->port;
      slot = std::make_unique<FailoverReplica>(target, port);
      WireCoordinator(cluster, killed_idx);
    }

    // --- coordinator ticks (promotion / demotion decisions) ---
    for (int i = 0; i < n; ++i) {
      auto& replica = *cluster.replicas[static_cast<std::size_t>(i)];
      if (!replica.alive) continue;
      const auto before = replica.coordinator->role();
      const auto after = replica.coordinator->Tick();
      if (before == proto::FailoverCoordinator::Role::kFollower &&
          after == proto::FailoverCoordinator::Role::kPublisher) {
        // Promotion republished a re-stamped set inside Tick: record it.
        record_truth(replica);
        if (result.first_promote_round < 0) result.first_promote_round = round;
        if (disruption_round >= 0 && result.promote_latency_rounds < 0 &&
            replica.coordinator->term() > disruption_term) {
          result.promote_latency_rounds = round - disruption_round;
        }
      }
    }

    // --- every self-believed publisher drives a reprice + republish ---
    for (const int p : current_publishers()) {
      auto& replica = *cluster.replicas[static_cast<std::size_t>(p)];
      std::vector<double> loads(replica.graph.link_count(), 0.0);
      for (const net::LinkId link : {0, 5, 9}) {
        const double util =
            0.25 + 0.45 * static_cast<double>((round + link + p) % 3);
        loads[static_cast<std::size_t>(link)] =
            util * replica.graph.link(link).capacity_bps;
      }
      replica.tracker.Update(loads);  // version listener pushes to followers
      if (auto* publisher = replica.coordinator->publisher()) {
        publisher->PublishOnce();  // same-round retry of failed pushes
      }
      record_truth(replica);
    }

    // --- beacons over the lossy datagram plane ---
    for (const int p : current_publishers()) {
      auto& replica = *cluster.replicas[static_cast<std::size_t>(p)];
      const auto beacon = replica.coordinator->BeaconFrame();
      if (!beacon) continue;
      for (int dst = 0; dst < n; ++dst) {
        if (dst == p || !cluster.Connected(p, dst)) continue;
        if (uniform(beacon_rng) < config.drop_rate) continue;
        auto datagram = *beacon;
        if (uniform(beacon_rng) < config.corrupt_rate) {
          std::uniform_int_distribution<std::size_t> pick(0, datagram.size() * 8 - 1);
          const std::size_t bit = pick(beacon_rng);
          datagram[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        }
        cluster.replicas[static_cast<std::size_t>(dst)]->follower.HandleBeacon(
            datagram);
      }
    }

    // --- backoff-gated anti-entropy pulls toward the freshest publisher ---
    const auto publishers = current_publishers();
    for (int i = 0; i < n; ++i) {
      auto& replica = *cluster.replicas[static_cast<std::size_t>(i)];
      if (!replica.alive || !replica.follower.behind()) continue;
      if (replica.coordinator->role() ==
          proto::FailoverCoordinator::Role::kPublisher) {
        continue;
      }
      int target = -1;
      std::uint64_t best_term = 0;
      for (const int p : publishers) {
        if (p == i || !cluster.Connected(i, p)) continue;
        const auto term = cluster.replicas[static_cast<std::size_t>(p)]
                              ->coordinator->term();
        if (target < 0 || term > best_term) {
          target = p;
          best_term = term;
        }
      }
      if (target < 0) continue;
      replica.follower.TryPull(
          *cluster.channels[static_cast<std::size_t>(i * n + target)],
          cluster.now);
    }

    // --- per-round invariants on every live replica ---
    for (int i = 0; i < n; ++i) {
      auto& replica = *cluster.replicas[static_cast<std::size_t>(i)];
      if (!replica.alive) continue;
      const std::string label = "replica " + std::to_string(i);
      const std::uint64_t term = replica.store.term();
      const std::uint64_t version = replica.store.version();
      if (std::pair(term, version) <
          std::pair(replica.last_term, replica.last_version)) {
        fail(label + ": installed (term, version) regressed");
      }
      if (version < replica.last_version) {
        fail(label + ": version token regressed across terms");
      }
      replica.last_term = term;
      replica.last_version = version;

      const auto held = replica.store.current();
      if (held) {
        const auto it = truth.find(std::pair(held->term, held->version));
        if (it == truth.end()) {
          fail(label + ": holds a (term, version) no publisher produced");
        } else if (proto::FrameSetChecksum(*held) != it->second) {
          fail(label + ": held frames diverge from the published bytes");
        }
      }

      const auto response = replica.serve.Handle(view_request);
      const auto decoded = proto::Decode(response);
      if (!decoded.has_value()) {
        fail(label + ": served undecodable bytes");
      } else if (std::get_if<proto::UnavailableResp>(&*decoded) != nullptr) {
        if (held) fail(label + ": served Unavailable while holding frames");
      } else if (const auto* view =
                     std::get_if<proto::GetExternalViewResp>(&*decoded)) {
        if (!held) {
          fail(label + ": served a view with no installed frames");
        } else {
          if (response != held->external_view) {
            fail(label + ": served view bytes differ from the installed frames");
          }
          const auto conditional = proto::Decode(replica.serve.Handle(
              proto::Encode(proto::GetExternalViewReq{view->version})));
          const auto* nm = conditional
                               ? std::get_if<proto::NotModifiedResp>(&*conditional)
                               : nullptr;
          if (nm == nullptr || nm->version != view->version) {
            fail(label + ": served token did not earn NotModified");
          }
        }
      } else {
        fail(label + ": unexpected response type");
      }

      digest.Fold(static_cast<std::uint64_t>(replica.coordinator->role()));
      digest.Fold(term);
      digest.Fold(version);
      digest.Fold(response);
    }
  }
  round = -1;

  // --- settle: heal everything, fence out stale publishers, converge -------
  cluster.island = -1;
  bool converged = false;
  for (int settle = 0; settle < 200 && !converged; ++settle) {
    cluster.now += config.tick_seconds;
    for (int i = 0; i < n; ++i) {
      auto& replica = *cluster.replicas[static_cast<std::size_t>(i)];
      if (replica.alive) replica.coordinator->Tick();
    }
    const auto publishers = current_publishers();
    for (const int p : publishers) {
      auto& replica = *cluster.replicas[static_cast<std::size_t>(p)];
      // A fenced ex-publisher learns of its succession from this push's
      // kStaleTerm ack; the live publisher confirms laggards.
      if (auto* publisher = replica.coordinator->publisher()) {
        publisher->PublishOnce();
        record_truth(replica);
        for (int dst = 0; dst < n; ++dst) {
          if (dst == p || !cluster.Connected(p, dst)) continue;
          cluster.replicas[static_cast<std::size_t>(dst)]->follower.HandleBeacon(
              publisher->BeaconFrame());
        }
      }
    }
    if (publishers.size() != 1) continue;
    const int p = publishers.front();
    auto& leader = *cluster.replicas[static_cast<std::size_t>(p)];
    const auto want = std::pair(leader.coordinator->term(),
                                leader.coordinator->publisher()->published_version());
    converged = true;
    for (int i = 0; i < n; ++i) {
      auto& replica = *cluster.replicas[static_cast<std::size_t>(i)];
      if (!replica.alive || i == p) continue;
      if (std::pair(replica.store.term(), replica.store.version()) == want) {
        continue;
      }
      // Clean direct pull: loss delayed convergence, it must not block it.
      proto::InProcessTransport direct(
          [&leader](std::span<const std::uint8_t> request) {
            return leader.coordinator->HandleReplication(request);
          });
      try {
        replica.follower.PullOnce(direct);
      } catch (const std::exception&) {
      }
      if (std::pair(replica.store.term(), replica.store.version()) != want) {
        converged = false;
      }
    }
  }

  const auto publishers = current_publishers();
  if (publishers.size() != 1) {
    fail("no unique publisher after settling (split-brain persisted)");
  } else if (!converged) {
    fail("followers did not converge to the publisher over a clean channel");
  } else {
    const int p = publishers.front();
    auto& leader = *cluster.replicas[static_cast<std::size_t>(p)];
    result.final_term = leader.coordinator->term();
    result.final_version = leader.coordinator->publisher()->published_version();
    // Every live follower ends on byte-identical, truth-matched frames.
    std::shared_ptr<const proto::SnapshotFrameSet> reference;
    for (int i = 0; i < n; ++i) {
      auto& replica = *cluster.replicas[static_cast<std::size_t>(i)];
      if (!replica.alive || i == p) continue;
      const auto held = replica.store.current();
      if (!held) {
        fail("replica " + std::to_string(i) + " ended with no installed frames");
        continue;
      }
      const auto it = truth.find(std::pair(held->term, held->version));
      if (it == truth.end() || proto::FrameSetChecksum(*held) != it->second) {
        fail("replica " + std::to_string(i) + " ended on unpublished frames");
      }
      if (!reference) {
        reference = held;
      } else {
        CompareFrameSets(*held, *reference,
                         "replica " + std::to_string(i) + " vs first follower",
                         result.violations);
      }
      digest.Fold(held->term);
      digest.Fold(held->version);
    }
  }

  for (const auto& replica : cluster.replicas) {
    AccumulateCounters(cluster, *replica);
  }
  result.promotions = cluster.promotions_accum;
  result.demotions = cluster.demotions_accum;
  result.fenced_rejects = cluster.fenced_rejects_accum;
  result.pull_backoff_skips = cluster.backoff_skips_accum;
  digest.Fold(result.final_term);
  digest.Fold(result.final_version);
  result.digest = digest.value();
  return result;
}

}  // namespace p4p::testsupport

#include "support/replication_harness.h"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "core/itracker.h"
#include "net/topology.h"
#include "proto/federation.h"
#include "proto/telemetry.h"
#include "support/fault_injection.h"

namespace p4p::testsupport {
namespace {

/// 64-bit FNV-1a fold for the replay digest.
class Digest {
 public:
  void Fold(std::uint64_t value) {
    for (int shift = 56; shift >= 0; shift -= 8) {
      Byte(static_cast<std::uint8_t>(value >> shift));
    }
  }
  void Fold(std::span<const std::uint8_t> bytes) {
    Fold(static_cast<std::uint64_t>(bytes.size()));
    for (const auto b : bytes) Byte(b);
  }
  std::uint64_t value() const { return hash_; }

 private:
  void Byte(std::uint8_t b) {
    hash_ ^= b;
    hash_ *= 1099511628211ULL;
  }
  std::uint64_t hash_ = 14695981039346656037ULL;
};

/// Byte-for-byte frame-set comparison; every differing field becomes one
/// violation so a conformance failure names exactly what diverged.
void CompareFrameSets(const proto::SnapshotFrameSet& got,
                      const proto::SnapshotFrameSet& want, const std::string& label,
                      std::vector<std::string>& violations) {
  const auto fail = [&](const std::string& what) {
    violations.push_back(label + ": " + what);
  };
  if (got.version != want.version) fail("version mismatch");
  if (got.view_version != want.view_version) fail("view_version mismatch");
  if (got.num_pids != want.num_pids) fail("num_pids mismatch");
  if (got.not_modified != want.not_modified) fail("not_modified bytes differ");
  if (got.external_view != want.external_view) fail("external_view bytes differ");
  if (got.policy != want.policy) fail("policy bytes differ");
  if (got.rows.size() != want.rows.size() ||
      got.row_versions.size() != want.row_versions.size()) {
    fail("row count mismatch");
    return;
  }
  for (std::size_t i = 0; i < got.rows.size(); ++i) {
    if (got.rows[i] != want.rows[i]) {
      fail("row " + std::to_string(i) + " bytes differ");
    }
    if (got.row_versions[i] != want.row_versions[i]) {
      fail("row " + std::to_string(i) + " content version differs");
    }
  }
}

}  // namespace

LossyCallChannel::LossyCallChannel(proto::Handler backend, double drop_rate,
                                   double corrupt_rate, std::uint64_t seed)
    : backend_(std::move(backend)), drop_rate_(drop_rate),
      corrupt_rate_(corrupt_rate), rng_(seed) {}

std::vector<std::uint8_t> LossyCallChannel::Call(
    std::span<const std::uint8_t> request) {
  ++calls_;
  std::uniform_real_distribution<double> u(0.0, 1.0);
  if (u(rng_) < drop_rate_) {
    ++drops_;
    throw std::runtime_error("request lost");
  }
  std::vector<std::uint8_t> delivered(request.begin(), request.end());
  if (!delivered.empty() && u(rng_) < corrupt_rate_) {
    ++corruptions_;
    FlipBit(delivered);
  }
  bytes_ += delivered.size();
  auto response = backend_(delivered);
  if (u(rng_) < drop_rate_) {
    ++drops_;
    throw std::runtime_error("response lost");
  }
  if (!response.empty() && u(rng_) < corrupt_rate_) {
    ++corruptions_;
    FlipBit(response);
  }
  bytes_ += response.size();
  return response;
}

void LossyCallChannel::FlipBit(std::vector<std::uint8_t>& bytes) {
  std::uniform_int_distribution<std::size_t> pick(0, bytes.size() * 8 - 1);
  const std::size_t bit = pick(rng_);
  bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

ReplicationScenarioResult RunReplicationScenario(
    const ReplicationScenarioConfig& config) {
  ReplicationScenarioResult result;
  int round = -1;  // -1 = setup / post-run phases
  const auto fail = [&](const std::string& what) {
    std::ostringstream msg;
    msg << "seed=" << config.seed << " drop=" << config.drop_rate
        << " round=" << round << ": " << what;
    result.violations.push_back(msg.str());
  };

  // --- publisher side: tracker in protected-link mode (Fig. 6), so the
  // scripted loads reprice only the protected links and most versions touch
  // a handful of p-distance rows — the workload deltas exist for.
  net::Graph graph = net::MakeAbilene();
  net::RoutingTable routing(graph);
  core::ITrackerConfig tracker_config;
  tracker_config.mode = core::PriceMode::kProtectedLink;
  core::ITracker tracker(graph, routing, tracker_config);
  const std::vector<net::LinkId> protected_links = {0, 5, 9};
  for (const auto link : protected_links) {
    tracker.ProtectLink(link, core::ProtectedLinkRule{0.5, 1.0, 0.1});
  }
  proto::ITrackerService service(&tracker);

  // --- telemetry plane: a probe feeding the collector over a (possibly
  // lossy) channel; the control loop drives reprice + delta publish.
  proto::LinkLoadCollector collector(graph.link_count());
  LossyCallChannel telemetry_channel(collector.handler(),
                                     config.telemetry_drop_rate,
                                     /*corrupt_rate=*/0.0, config.seed ^ 0x7E1EULL);
  proto::LinkLoadReporter reporter(/*reporter_id=*/7, &telemetry_channel);

  // --- follower under test: delta replication over lossy channels.
  proto::ReplicatedSnapshotStore store_d;
  proto::FollowerPortalService serve_d(&store_d);
  proto::SnapshotFollower follower_d(&store_d);
  proto::SnapshotPublisher delta_pub(&service);
  delta_pub.AddFollower("delta.example", 1,
                        std::make_unique<LossyCallChannel>(
                            follower_d.replication_handler(), config.drop_rate,
                            config.corrupt_rate, config.seed ^ 0xD317AULL));
  LossyCallChannel pull_channel(delta_pub.replication_handler(), config.drop_rate,
                                config.corrupt_rate, config.seed ^ 0x9D11ULL);

  // --- oracle follower: full pushes only, clean channel — what the lossy
  // delta follower must converge to byte for byte.
  proto::ReplicatedSnapshotStore store_f;
  proto::FollowerPortalService serve_f(&store_f);
  proto::SnapshotFollower follower_f(&store_f);
  proto::PublisherOptions full_only;
  full_only.enable_delta = false;
  proto::SnapshotPublisher oracle_pub(&service, full_only);
  oracle_pub.AddFollower("oracle.example", 2,
                         std::make_unique<proto::InProcessTransport>(
                             follower_f.replication_handler()));

  proto::PDistanceControlLoop loop(&tracker, &collector, &delta_pub);

  // Beacons ride a faulty datagram link (drop/reorder/corrupt/delay).
  std::mt19937_64 beacon_rng(config.seed ^ 0xB34C04ULL);
  FaultProfile beacon_faults;
  beacon_faults.drop_rate = config.drop_rate;
  beacon_faults.reorder_rate = config.drop_rate / 2;
  beacon_faults.corrupt_rate = config.corrupt_rate;
  beacon_faults.delay_rate = 0.25;
  FaultyDatagramLink beacon_link(beacon_faults, &beacon_rng);

  // Truth map: version -> checksum of the frames published at it. Whatever
  // the follower serves must checksum-match an entry, which is exactly the
  // "complete set of one published version, never mixed" invariant.
  std::map<std::uint64_t, std::uint32_t> truth;
  Digest digest;
  std::uint64_t last_version_d = 0;
  int stale_streak = 0;

  const auto view_request = proto::Encode(proto::GetExternalViewReq{});

  for (round = 0; round < config.rounds; ++round) {
    // Scripted feed: utilization on the protected links cycles below /
    // around / above the 0.5 threshold, so prices rise some rounds, decay
    // others, and stand still when a flush was lost. A couple of
    // unprotected links report too (prices ignore them).
    for (const auto link : protected_links) {
      const double util = 0.25 + 0.45 * static_cast<double>((round + link) % 3);
      reporter.Record(link, util * graph.link(link).capacity_bps);
    }
    reporter.Record(1, 0.3 * graph.link(1).capacity_bps);
    reporter.Record(2, 0.6 * graph.link(2).capacity_bps);
    reporter.Flush();  // a lost flush keeps the batch for the next round

    if (loop.Tick()) ++result.updates;  // reprice + delta publish
    delta_pub.PublishOnce();            // same-round retry of failed pushes
    oracle_pub.PublishOnce();

    {
      const auto frames = service.ExportFrames();
      truth.emplace(frames.version, proto::FrameSetChecksum(frames));
    }

    // Oracle lockstep: a clean full-push channel never lags the tracker.
    if (store_f.version() != tracker.version()) {
      fail("oracle follower lagged a clean channel");
    }

    // Beacon gap detection + anti-entropy pull over the lossy channel.
    beacon_link.Push(delta_pub.BeaconFrame());
    beacon_link.Tick();
    while (auto datagram = beacon_link.Pop()) follower_d.HandleBeacon(*datagram);
    if (follower_d.behind()) {
      try {
        follower_d.PullOnce(pull_channel);
      } catch (const std::exception&) {
      }
    }

    // --- per-round invariants on the lossy follower ---
    const auto held = store_d.current();
    if (store_d.version() < last_version_d) fail("installed version rolled back");
    last_version_d = store_d.version();

    if (held) {
      const auto it = truth.find(held->version);
      if (it == truth.end()) {
        fail("follower holds a version the publisher never published");
      } else if (proto::FrameSetChecksum(*held) != it->second) {
        fail("held frames diverge from the published bytes (mixed set?)");
      }
    }

    const auto response = serve_d.Handle(view_request);
    const auto decoded = proto::Decode(response);
    if (!decoded.has_value()) {
      fail("follower served undecodable bytes");
    } else if (std::get_if<proto::UnavailableResp>(&*decoded) != nullptr) {
      if (held) fail("served Unavailable while holding installed frames");
    } else if (const auto* view =
                   std::get_if<proto::GetExternalViewResp>(&*decoded)) {
      if (!held) {
        fail("served a view with no installed frames");
      } else {
        if (response != held->external_view) {
          fail("served view bytes differ from the installed frames");
        }
        if (view->version != held->view_version) {
          fail("served view version is not the installed view_version");
        }
        // The served version token earns NotModified back (the
        // content-version conditional path), and a row fetch comes from
        // the same installed set — no torn reads across frames.
        const auto conditional = proto::Decode(
            serve_d.Handle(proto::Encode(proto::GetExternalViewReq{view->version})));
        const auto* nm =
            conditional ? std::get_if<proto::NotModifiedResp>(&*conditional) : nullptr;
        if (nm == nullptr || nm->version != view->version) {
          fail("view version token did not earn NotModified");
        }
        const auto pid = static_cast<core::Pid>(round % held->rows.size());
        if (serve_d.Handle(proto::Encode(proto::GetPDistancesReq{pid})) !=
            held->rows[static_cast<std::size_t>(pid)]) {
          fail("served row bytes differ from the installed frames");
        }
      }
    } else {
      fail("unexpected response type from follower");
    }

    if (store_d.version() < tracker.version()) {
      ++stale_streak;
      result.max_staleness_rounds = std::max(result.max_staleness_rounds, stale_streak);
    } else {
      stale_streak = 0;
    }

    digest.Fold(store_d.version());
    digest.Fold(store_f.version());
    digest.Fold(response);
    digest.Fold(serve_f.Handle(view_request));
  }
  round = -1;

  // --- healing: once the channel is clean, anti-entropy converges and the
  // delta-synced store is byte-for-byte the full-push oracle's.
  proto::InProcessTransport clean_pull(delta_pub.replication_handler());
  for (int attempt = 0; attempt < 64 && store_d.version() < tracker.version();
       ++attempt) {
    follower_d.PullOnce(clean_pull);
  }
  if (store_d.version() != tracker.version()) {
    fail("anti-entropy over a clean channel did not converge");
  }

  const auto final_d = store_d.current();
  const auto final_f = store_f.current();
  if (!final_d || !final_f) {
    fail("a follower ended the scenario with no installed frames");
  } else {
    CompareFrameSets(*final_d, *final_f, "delta follower vs full-push oracle",
                     result.violations);
    CompareFrameSets(*final_d, service.ExportFrames(),
                     "delta follower vs publisher export", result.violations);
  }

  digest.Fold(store_d.version());
  result.digest = digest.value();
  result.final_version = store_d.version();
  result.delta_installs = follower_d.delta_install_count();
  result.delta_fallbacks = delta_pub.delta_fallback_count();
  result.delta_frames_sent = delta_pub.delta_frames_sent();
  result.full_frames_sent = delta_pub.full_frames_sent();
  result.delta_bytes_sent = delta_pub.delta_bytes_sent();
  result.full_bytes_sent = delta_pub.full_bytes_sent();
  return result;
}

}  // namespace p4p::testsupport

// Deterministic end-to-end replication conformance harness.
//
// RunReplicationScenario wires the full control loop the delta-replication
// design promises — scripted telemetry -> LinkLoadCollector ->
// PDistanceControlLoop -> ITracker reprice -> SnapshotPublisher delta push
// -> follower install -> follower serving — across lossy channels, and
// checks the safety invariants every round:
//
//   * the follower's served bytes always form one complete published frame
//     set (checksum-matched against a truth map recorded at publish time):
//     never a mixed set, never a version the publisher never produced;
//   * installed versions are monotone — duplicated, reordered, or corrupt
//     frames can delay convergence but never roll the follower back;
//   * before the first install the follower sheds with UnavailableResp and
//     nothing else;
//   * a full-push-only oracle follower on a clean channel tracks the
//     publisher in lockstep, and once the lossy channel heals the
//     delta-sync follower converges to byte-for-byte the same frame set.
//
// Everything — fault decisions, telemetry, prices — is a pure function of
// ReplicationScenarioConfig, so a scenario replays bit-for-bit (the result
// digest folds every served byte). The harness is gtest-free: it reports
// invariant violations as strings and the conformance suite asserts the
// list is empty, so one seed's failure names the broken invariant instead
// of an anonymous EXPECT deep in a loop.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "proto/transport.h"

namespace p4p::testsupport {

/// Request/response Transport wrapper with seeded faults: a dropped request
/// or response throws (the TCP analogue of a lost datagram / reset
/// connection), a corrupt one gets a single bit flipped. Deterministic
/// given the seed and call sequence. Counts calls and forwarded bytes so
/// harnesses can account wire cost per scenario.
class LossyCallChannel final : public proto::Transport {
 public:
  LossyCallChannel(proto::Handler backend, double drop_rate, double corrupt_rate,
                   std::uint64_t seed);

  std::vector<std::uint8_t> Call(std::span<const std::uint8_t> request) override;

  std::uint64_t call_count() const { return calls_; }
  std::uint64_t drop_count() const { return drops_; }
  std::uint64_t corrupt_count() const { return corruptions_; }
  /// Request + response bytes that actually traversed the channel.
  std::uint64_t bytes_forwarded() const { return bytes_; }

 private:
  void FlipBit(std::vector<std::uint8_t>& bytes);

  proto::Handler backend_;
  double drop_rate_;
  double corrupt_rate_;
  std::mt19937_64 rng_;
  std::uint64_t calls_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t corruptions_ = 0;
  std::uint64_t bytes_ = 0;
};

struct ReplicationScenarioConfig {
  std::uint64_t seed = 1;
  /// Drop rate of the delta push/pull channels to the follower under test.
  double drop_rate = 0.0;
  /// Single-bit corruption rate of the same channels (and the beacons).
  double corrupt_rate = 0.0;
  /// Drop rate of the probe->collector telemetry channel. A lost flush
  /// keeps its batch buffered (sequence numbers make the retry safe), so
  /// that round's tick is empty and no version is burned.
  double telemetry_drop_rate = 0.0;
  /// Control-loop ticks driven through the scripted telemetry feed.
  int rounds = 30;
};

struct ReplicationScenarioResult {
  /// Invariant violations, empty when the scenario held every guarantee.
  /// Each entry names the round and the broken invariant.
  std::vector<std::string> violations;
  /// FNV-1a fold of every served byte and installed version across the
  /// run — two runs of the same config must produce the same digest.
  std::uint64_t digest = 0;
  /// Publisher version after the final tick (== both stores after healing).
  std::uint64_t final_version = 0;
  /// Longest run of consecutive rounds the lossy follower lagged the
  /// publisher (its staleness bound under this fault profile).
  int max_staleness_rounds = 0;
  /// Ticks that actually repriced (empty telemetry ticks don't).
  std::uint64_t updates = 0;
  // Replication accounting for the scenario's delta publisher.
  std::uint64_t delta_installs = 0;
  std::uint64_t delta_fallbacks = 0;
  std::uint64_t delta_frames_sent = 0;
  std::uint64_t full_frames_sent = 0;
  std::uint64_t delta_bytes_sent = 0;
  std::uint64_t full_bytes_sent = 0;
};

/// Runs one scripted scenario end to end (see file comment). Never throws
/// on invariant failure — failures land in `violations`.
ReplicationScenarioResult RunReplicationScenario(
    const ReplicationScenarioConfig& config);

// --- failover chaos scenarios (DESIGN.md §13) -------------------------------
//
// RunFailoverScenario drives a whole replica cluster — every replica runs
// the full stack (ITracker + service + store + follower + coordinator)
// and starts as a follower — through crash/restart/partition schedules
// over lossy channels, and proves the failover invariants every round:
//
//   * installs are monotone in the lexicographic (term, version) pair per
//     store lifetime, and the raw version token never regresses either
//     (the kTermVersionStride floor at promotion);
//   * a replica only ever holds/serves a frame set some publisher actually
//     published (checksum-matched against a truth map keyed by
//     (term, version) — split-brain publishers both record truth, and the
//     fence decides whose frames survive);
//   * after every fault heals, exactly one publisher remains and every
//     follower converges to its byte-identical frame set;
//   * same-seed replay is bit-identical (the digest folds every served
//     byte and installed pair).

struct FailoverScenarioConfig {
  std::uint64_t seed = 1;
  /// Drop / single-bit-corruption rates of every replication channel and
  /// of the beacon datagrams.
  double drop_rate = 0.0;
  double corrupt_rate = 0.0;
  int rounds = 40;
  /// Cluster size (2..8). SRV priority == replica index, so replica 0 is
  /// the rank-0 candidate and the first publisher.
  int replicas = 3;
  /// Round at which the current publisher process is killed (-1 = never):
  /// it stops ticking/beaconing and its endpoint throws. With drop_rate > 0
  /// the kill lands mid-replication — followers sit at mixed acked bases.
  int kill_publisher_round = -1;
  /// Round at which the killed replica cold-restarts with empty state
  /// (fresh store, fresh tracker, fence at 0) and must re-pull (-1 = never).
  int revive_publisher_round = -1;
  /// Round at which the current publisher is partitioned off alone, so the
  /// majority side promotes and two self-believed publishers coexist
  /// (-1 = never).
  int partition_round = -1;
  /// Round at which the partition heals: the fenced ex-publisher's pushes
  /// must be rejected (kStaleTerm) and it must demote (-1 = never).
  int heal_round = -1;
  /// Lease/stagger driving the coordinators (injectable virtual clock).
  double lease_seconds = 3.0;
  double stagger_seconds = 1.0;
  /// Virtual seconds per round.
  double tick_seconds = 1.0;
};

struct FailoverScenarioResult {
  /// Invariant violations, empty when the scenario held every guarantee.
  std::vector<std::string> violations;
  /// FNV-1a fold of roles, installed pairs, and served bytes across the
  /// run — two runs of the same config must produce the same digest.
  std::uint64_t digest = 0;
  /// The surviving publisher's (term, version) after post-run settling.
  std::uint64_t final_term = 0;
  std::uint64_t final_version = 0;
  /// Round of the first promotion ever (-1 = none happened).
  int first_promote_round = -1;
  /// Rounds from the scheduled disruption (kill or partition) to the first
  /// new-term publisher (-1 = no disruption scheduled / never recovered).
  int promote_latency_rounds = -1;
  /// Role transitions across the whole run (cold-restarted replicas'
  /// counts are accumulated before the rebuild).
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  /// Follower-side kStaleTerm rejections — the fence doing its job (what
  /// the bench reports as fed_fenced_rejects_total).
  std::uint64_t fenced_rejects = 0;
  /// TryPull invocations the jittered-backoff schedule suppressed.
  std::uint64_t pull_backoff_skips = 0;
};

/// Runs one failover chaos scenario end to end. Never throws on invariant
/// failure — failures land in `violations`. Throws std::invalid_argument
/// for out-of-range configs.
FailoverScenarioResult RunFailoverScenario(const FailoverScenarioConfig& config);

}  // namespace p4p::testsupport
